// Tests for the era model: anchor values and trend directions that the
// longitudinal reproduction depends on.
#include <gtest/gtest.h>

#include "topo/era.h"

namespace bgpatoms::topo {
namespace {

TEST(Era, QuarterYear) {
  EXPECT_DOUBLE_EQ(quarter_year(2004, 1), 2004.0);
  EXPECT_DOUBLE_EQ(quarter_year(2004, 4), 2004.75);
}

TEST(Era, V4ScaledSizesTrackAnchors) {
  const auto p2004 = era_params_v4(2004.0, 1.0);
  const auto p2024 = era_params_v4(2024.75, 1.0);
  EXPECT_NEAR(p2004.n_as, 16490, 200);
  EXPECT_NEAR(p2024.n_as, 76672, 1500);
  // Prefix growth factor ~7.8x comes from n_as * prefixes_per_as.
  const double growth = (p2024.n_as * p2024.prefixes_per_as_mean) /
                        (p2004.n_as * p2004.prefixes_per_as_mean);
  EXPECT_GT(growth, 6.0);
  EXPECT_LT(growth, 10.0);
}

TEST(Era, ScaleShrinksAbsolutesKeepsRatios) {
  const auto full = era_params_v4(2024.0, 1.0);
  const auto tenth = era_params_v4(2024.0, 0.1);
  EXPECT_NEAR(tenth.n_as, full.n_as / 10, full.n_as / 50);
  EXPECT_DOUBLE_EQ(tenth.prefixes_per_as_mean, full.prefixes_per_as_mean);
  EXPECT_DOUBLE_EQ(tenth.single_unit_prob, full.single_unit_prob);
  // Peers shrink with sqrt(scale) so the visibility filters keep biting.
  EXPECT_GT(tenth.n_peers, full.n_peers / 10);
  EXPECT_LT(tenth.n_peers, full.n_peers);
}

TEST(Era, MinimumsAtTinyScale) {
  const auto p = era_params_v4(2004.0, 1e-6);
  EXPECT_GE(p.n_as, 64);
  EXPECT_GE(p.n_peers, 8);
  EXPECT_GE(p.n_collectors, 2);
}

TEST(Era, MonotoneTrends) {
  double prev_as = 0, prev_transit = 0;
  double prev_single_unit = 1.0;
  for (double year = 2002; year <= 2024.75; year += 0.25) {
    const auto p = era_params_v4(year, 1.0);
    EXPECT_GE(p.n_as, prev_as) << year;
    prev_as = p.n_as;
    // Transit-side policy mechanisms only ever grow (Fig. 4's story).
    EXPECT_GE(p.w_transit1 + p.w_transit2, prev_transit - 1e-9) << year;
    prev_transit = p.w_transit1 + p.w_transit2;
    // Policy granularity rises: single-unit ASes decline.
    EXPECT_LE(p.single_unit_prob, prev_single_unit + 1e-9) << year;
    prev_single_unit = p.single_unit_prob;
  }
}

TEST(Era, CollectorArtifactsOnlyInLateEra) {
  EXPECT_EQ(era_params_v4(2004.0, 1.0).n_addpath_broken, 0);
  EXPECT_GT(era_params_v4(2022.0, 1.0).n_addpath_broken, 0);
  EXPECT_FALSE(era_params_v4(2004.0, 1.0).private_asn_peer);
  EXPECT_TRUE(era_params_v4(2021.5, 1.0).private_asn_peer);   // A8.3.2 window
  EXPECT_FALSE(era_params_v4(2024.0, 1.0).private_asn_peer);  // removed 2023
}

TEST(Era, StabilityAnchorsMatchTable3) {
  const auto p2004 = era_params_v4(2004.0, 1.0);
  EXPECT_NEAR(p2004.churn_8h, 0.037, 0.002);
  EXPECT_NEAR(p2004.churn_1w, 0.197, 0.005);
  const auto p2024 = era_params_v4(2024.75, 1.0);
  EXPECT_NEAR(p2024.churn_8h, 0.163, 0.01);
  // Churn is cumulative: 8h <= 24h <= 1w always.
  for (double year = 2002; year <= 2024.75; year += 0.5) {
    const auto p = era_params_v4(year, 1.0);
    EXPECT_LE(p.churn_8h, p.churn_24h);
    EXPECT_LE(p.churn_24h, p.churn_1w);
  }
}

TEST(Era, V6Anchors) {
  const auto p2011 = era_params_v6(2011.0, 1.0);
  EXPECT_NEAR(p2011.n_as, 2938, 50);
  EXPECT_NEAR(p2011.prefixes_per_as_mean, 1.42, 0.05);
  const auto p2024 = era_params_v6(2024.75, 1.0);
  EXPECT_NEAR(p2024.n_as, 34164, 700);
  EXPECT_EQ(p2024.family, net::Family::kIPv6);
}

TEST(Era, FitiBurstStartsIn2021) {
  EXPECT_EQ(era_params_v6(2020.9, 1.0).fiti_ases, 0);
  EXPECT_EQ(era_params_v6(2021.0, 1.0).fiti_ases, 4096);
  EXPECT_EQ(era_params_v6(2024.0, 0.1).fiti_ases, 409);
}

TEST(Era, V6StabilityExceedsV4) {
  for (double year : {2012.0, 2018.0, 2024.0}) {
    EXPECT_LT(era_params_v6(year, 1.0).churn_8h,
              era_params_v4(year, 1.0).churn_8h)
        << year;
  }
}

TEST(Era, V6CoarserTrafficEngineering) {
  // §5.4: v6 atoms form closer to the origin — less transit-side policy.
  for (double year : {2012.0, 2020.0, 2024.0}) {
    const auto v4 = era_params_v4(year, 1.0);
    const auto v6 = era_params_v6(year, 1.0);
    EXPECT_LT(v6.w_transit1 + v6.w_transit2, v4.w_transit1 + v4.w_transit2)
        << year;
  }
}

TEST(Era, WeightsAreSane) {
  for (double year = 2002; year <= 2024.75; year += 1.0) {
    const auto p = era_params_v4(year, 1.0);
    const double sum =
        p.w_prepend + p.w_scoped + p.w_selective + p.w_transit1 + p.w_transit2;
    EXPECT_GT(sum, 0.5) << year;
    EXPECT_LT(sum, 1.5) << year;
    EXPECT_GE(p.unit_size_one_prob, 0.0);
    EXPECT_LE(p.unit_size_one_prob, 1.0);
    EXPECT_GE(p.full_feed_frac, 0.3);
    EXPECT_LE(p.full_feed_frac, 1.0);
  }
}

}  // namespace
}  // namespace bgpatoms::topo
