// Tests for formation-distance analysis, including the paper's §3.4.2
// worked example about prepending-aware split points.
#include <gtest/gtest.h>

#include "core/formation.h"
#include "testutil.h"

namespace bgpatoms::core {
namespace {

using test::DatasetBuilder;

net::AsPath path(const char* text) { return *net::AsPath::parse(text); }

TEST(SplitPoint, OriginDifferenceIsOne) {
  // Wire order: origin last. Origins 1 vs 2 differ at unique-hop 1.
  EXPECT_EQ(split_point(path("9 5 1"), path("9 5 2"), PrependMethod::kRunAware),
            1);
}

TEST(SplitPoint, SecondHopDifferenceIsTwo) {
  EXPECT_EQ(split_point(path("9 5 1"), path("9 6 1"), PrependMethod::kRunAware),
            2);
}

TEST(SplitPoint, ThirdHopDifferenceIsThree) {
  EXPECT_EQ(
      split_point(path("9 5 3 1"), path("9 6 3 1"), PrependMethod::kRunAware),
      3);
}

TEST(SplitPoint, EmptyPathForcesOne) {
  EXPECT_EQ(split_point(net::AsPath(), path("9 1"), PrependMethod::kRunAware),
            1);
  EXPECT_EQ(split_point(path("9 1"), net::AsPath(), PrependMethod::kRunAware),
            1);
}

TEST(SplitPoint, IdenticalPathsNeverSplit) {
  EXPECT_EQ(split_point(path("9 5 1"), path("9 5 1"),
                        PrependMethod::kRunAware),
            INT32_MAX);
}

TEST(SplitPoint, PaperExampleMethodIiiKeepsPrependDistinguishable) {
  // §3.4.2: paths (AS1,AS2,AS3) vs (AS1,AS2,AS2,AS3) — written here in wire
  // order with AS3 the origin... the example is origin-first: (AS1 AS2 AS3)
  // means AS1 is the origin. In wire order: "3 2 1" vs "3 2 2 1".
  const auto a = path("3 2 1");
  const auto b = path("3 2 2 1");
  // Method (iii): the prepend-count mismatch at AS2 splits at distance 2.
  EXPECT_EQ(split_point(a, b, PrependMethod::kRunAware), 2);
  // Method (ii): stripping first makes them indistinguishable — the flaw
  // the paper calls out.
  EXPECT_EQ(split_point(a, b, PrependMethod::kStripAfterGrouping), INT32_MAX);
}

TEST(SplitPoint, OriginPrependSplitsAtOne) {
  // "1 1 1" vs "1": origin prepending is origin policy -> distance 1.
  EXPECT_EQ(split_point(path("9 1 1 1"), path("9 1"),
                        PrependMethod::kRunAware),
            1);
}

TEST(SplitPoint, PrefixPathSplitsAfterCommonPart) {
  // One path continues beyond the other: split right after the shared part.
  EXPECT_EQ(split_point(path("5 1"), path("9 5 1"), PrependMethod::kRunAware),
            3);
}

TEST(SplitPoint, Symmetric) {
  const auto a = path("9 5 3 1");
  const auto b = path("9 6 2 1");
  for (auto m : {PrependMethod::kRunAware, PrependMethod::kStripAfterGrouping}) {
    EXPECT_EQ(split_point(a, b, m), split_point(b, a, m));
  }
}

TEST(SplitPoint, AsnMismatchBeforeCountMismatch) {
  // Counts differ at origin AND ASNs differ at hop 2: hop-by-hop scan
  // reports the first difference of either kind — the origin's prepending.
  EXPECT_EQ(split_point(path("9 5 1 1"), path("9 6 1"),
                        PrependMethod::kRunAware),
            1);
}

// ---------------------------------------------------------------------------
// Whole-analysis tests on crafted atom sets.
// ---------------------------------------------------------------------------

struct Analysis {
  bgp::Dataset ds;
  SanitizedSnapshot snap;
  AtomSet atoms;
  FormationResult result;
};

Analysis analyze(DatasetBuilder& b,
                 PrependMethod method = PrependMethod::kRunAware) {
  Analysis a{std::move(b.dataset()), {}, {}, {}};
  a.snap = sanitize(a.ds, 0, test::lax_config());
  a.atoms = compute_atoms(a.snap);
  a.result = formation_distance(a.atoms, method);
  return a;
}

TEST(Formation, SingleAtomOriginIsDistanceOne) {
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 1").route("10.1.0.0/16", "100 1");
  const auto a = analyze(b);
  ASSERT_EQ(a.result.distance.size(), 1u);
  EXPECT_EQ(a.result.distance[0], 1);
  EXPECT_EQ(a.result.cause[0], DistanceOneCause::kOnlyAtomOfOrigin);
  EXPECT_EQ(a.result.first_split_at[1], 1u);
  EXPECT_EQ(a.result.all_split_at[1], 1u);
}

TEST(Formation, SelectiveAnnounceFormsAtDistanceTwo) {
  // Two atoms of origin 1: reached via 5 vs via 6 at the same peer.
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 5 1").route("10.1.0.0/16", "100 6 1");
  const auto a = analyze(b);
  ASSERT_EQ(a.atoms.atoms.size(), 2u);
  EXPECT_EQ(a.result.distance[0], 2);
  EXPECT_EQ(a.result.distance[1], 2);
  EXPECT_EQ(a.result.atoms_at_distance[2], 2u);
}

TEST(Formation, TransitSplitFormsAtDistanceThree) {
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 7 5 1")
      .route("10.1.0.0/16", "100 8 5 1");
  const auto a = analyze(b);
  EXPECT_EQ(a.result.atoms_at_distance[3], 2u);
}

TEST(Formation, MaxOverSiblingsDeterminesDistance) {
  // Three atoms: A vs B differ at 2; A vs C differ at 3; B vs C differ at 2.
  // d(A) = max(2,3) = 3, d(B) = 2, d(C) = 3.
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 7 5 1")    // A
      .route("10.1.0.0/16", "100 7 6 1")    // B
      .route("10.2.0.0/16", "100 8 5 1");   // C
  const auto a = analyze(b);
  ASSERT_EQ(a.atoms.atoms.size(), 3u);
  // Identify atoms by their prefix.
  auto dist_of = [&](const char* prefix) {
    const auto id = a.ds.prefixes.find(*net::Prefix::parse(prefix));
    return a.result.distance[a.atoms.atom_of.at(id)];
  };
  EXPECT_EQ(dist_of("10.0.0.0/16"), 3);
  EXPECT_EQ(dist_of("10.1.0.0/16"), 2);
  EXPECT_EQ(dist_of("10.2.0.0/16"), 3);
  // Per-AS first/last split: d_min = 2, d_max = 3.
  EXPECT_EQ(a.result.first_split_at[2], 1u);
  EXPECT_EQ(a.result.all_split_at[3], 1u);
}

TEST(Formation, VisibilityCauseClassified) {
  // Atom B invisible at peer 200: unique-peer-set distance 1.
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 1").route("10.1.0.0/16", "100 1");
  b.peer(200).route("10.0.0.0/16", "200 1");
  const auto a = analyze(b);
  ASSERT_EQ(a.atoms.atoms.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(a.result.distance[i], 1);
    EXPECT_EQ(a.result.cause[i], DistanceOneCause::kUniquePeerSet);
  }
  EXPECT_DOUBLE_EQ(a.result.cause_share(DistanceOneCause::kUniquePeerSet),
                   1.0);
}

TEST(Formation, PrependCauseClassified) {
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 1").route("10.1.0.0/16", "100 1 1");
  const auto a = analyze(b);
  ASSERT_EQ(a.atoms.atoms.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(a.result.distance[i], 1);
    EXPECT_EQ(a.result.cause[i], DistanceOneCause::kPrepending);
  }
}

TEST(Formation, MethodIiMergesPrependOnlyAtoms) {
  // Under method (ii) the prepend-only pair is indistinguishable: both
  // atoms exist (grouping is raw) but report distance 1 with no split.
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 1").route("10.1.0.0/16", "100 1 1");
  const auto a = analyze(b, PrependMethod::kStripAfterGrouping);
  ASSERT_EQ(a.atoms.atoms.size(), 2u);
  EXPECT_EQ(a.result.distance[0], 1);
  EXPECT_EQ(a.result.distance[1], 1);
}

TEST(Formation, MultiHistogramExcludesSingleAtomOrigins) {
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 1")       // origin 1: single atom
      .route("10.1.0.0/16", "100 5 2")     // origin 2: two atoms at d2
      .route("10.2.0.0/16", "100 6 2");
  const auto a = analyze(b);
  EXPECT_EQ(a.result.total_atoms, 3u);
  EXPECT_EQ(a.result.total_multi_atoms, 2u);
  EXPECT_EQ(a.result.atoms_at_distance[1], 1u);
  EXPECT_EQ(a.result.atoms_at_distance_multi[1], 0u);
  EXPECT_EQ(a.result.atoms_at_distance_multi[2], 2u);
  EXPECT_DOUBLE_EQ(a.result.share_at_multi(2), 1.0);
}

TEST(Formation, CumulativeShare) {
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 1")
      .route("10.1.0.0/16", "100 5 2")
      .route("10.2.0.0/16", "100 6 2");
  const auto a = analyze(b);
  EXPECT_NEAR(a.result.cumulative_share(1), 1.0 / 3, 1e-9);
  EXPECT_NEAR(a.result.cumulative_share(2), 1.0, 1e-9);
  EXPECT_NEAR(a.result.share_at(1) + a.result.share_at(2), 1.0, 1e-9);
}

TEST(Formation, MinOverPeersWins) {
  // Peer 100 sees a difference at 3, peer 200 at 2: overall split is 2.
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 7 5 1")
      .route("10.1.0.0/16", "100 8 5 1");
  b.peer(200)
      .route("10.0.0.0/16", "200 5 1")
      .route("10.1.0.0/16", "200 6 1");
  const auto a = analyze(b);
  EXPECT_EQ(a.result.atoms_at_distance[2], 2u);
  EXPECT_EQ(a.result.atoms_at_distance[3], 0u);
}

TEST(Formation, PrependingDoesNotInflateDistance) {
  // Transit prepending ("5 5 5") must not push the split point beyond the
  // unique-AS hop index — the whole point of method (iii).
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 7 5 5 5 1")
      .route("10.1.0.0/16", "100 8 5 5 5 1");
  const auto a = analyze(b);
  // Unique hops from origin: 1(origin) 5(transit) then 7/8 differ -> 3.
  EXPECT_EQ(a.result.atoms_at_distance[3], 2u);
}

}  // namespace
}  // namespace bgpatoms::core
