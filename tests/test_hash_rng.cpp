// Tests for hashing utilities, CRC-32, varint I/O and the deterministic RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "bgp/io.h"
#include "net/hash.h"
#include "net/rng.h"

namespace bgpatoms {
namespace {

TEST(Hash, Fnv1aKnownVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash, Mix64Avalanche) {
  // Flipping one input bit flips roughly half the output bits.
  int total = 0;
  for (int bit = 0; bit < 64; ++bit) {
    total += std::popcount(mix64(0x1234567890abcdefULL) ^
                           mix64(0x1234567890abcdefULL ^ (1ULL << bit)));
  }
  const double avg = total / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Hash, CombineOrderDependent) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(Hash, SpanHashingRespectsSeed) {
  const std::vector<std::uint32_t> v{1, 2, 3};
  EXPECT_NE(hash_span<std::uint32_t>(v, 1), hash_span<std::uint32_t>(v, 2));
}

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 check value: "123456789" -> 0xCBF43926.
  const char* s = "123456789";
  bgp::Crc32 crc;
  crc.update(s, 9);
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8};
  bgp::Crc32 a;
  a.update(data.data(), 4);
  a.update(data.data() + 4, 4);
  EXPECT_EQ(a.value(), bgp::crc32(data));
}

TEST(ByteIo, VarintRoundTripBoundaries) {
  bgp::ByteWriter w;
  const std::vector<std::uint64_t> values{
      0, 1, 127, 128, 16383, 16384, UINT32_MAX, UINT64_MAX};
  for (auto v : values) w.varint(v);
  bgp::ByteReader r(w.buffer());
  for (auto v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteIo, SignedVarintRoundTrip) {
  bgp::ByteWriter w;
  const std::vector<std::int64_t> values{0, -1, 1, -64, 63, INT64_MIN,
                                         INT64_MAX};
  for (auto v : values) w.svarint(v);
  bgp::ByteReader r(w.buffer());
  for (auto v : values) EXPECT_EQ(r.svarint(), v);
}

TEST(ByteIo, FixedIntegersLittleEndian) {
  bgp::ByteWriter w;
  w.u32(0x01020304u);
  EXPECT_EQ(w.buffer()[0], 0x04);
  EXPECT_EQ(w.buffer()[3], 0x01);
  w.u64(0x0102030405060708ULL);
  bgp::ByteReader r(w.buffer());
  EXPECT_EQ(r.u32(), 0x01020304u);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
}

TEST(ByteIo, StringRoundTrip) {
  bgp::ByteWriter w;
  w.string("route-views.sydney");
  w.string("");
  bgp::ByteReader r(w.buffer());
  EXPECT_EQ(r.string(), "route-views.sydney");
  EXPECT_EQ(r.string(), "");
}

TEST(ByteIo, TruncationThrows) {
  bgp::ByteWriter w;
  w.u32(42);
  bgp::ByteReader r(std::span<const std::uint8_t>(w.buffer().data(), 2));
  EXPECT_THROW(r.u32(), bgp::ArchiveError);
}

TEST(ByteIo, OverlongVarintThrows) {
  std::vector<std::uint8_t> bad(11, 0x80);
  bgp::ByteReader r(bad);
  EXPECT_THROW(r.varint(), bgp::ArchiveError);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, HeavyTailBoundsAndMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.heavy_tail(5.0, 2.0, 1 << 16);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1u << 16);
    sum += static_cast<double>(v);
  }
  // The discretized bounded Pareto lands near the requested mean.
  EXPECT_NEAR(sum / n, 5.0, 1.5);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkIndependence) {
  Rng a(21);
  Rng child = a.fork(1);
  Rng child2 = a.fork(1);
  // Sequential forks from the same parent differ (parent state advanced).
  EXPECT_NE(child.next_u64(), child2.next_u64());
}

}  // namespace
}  // namespace bgpatoms
