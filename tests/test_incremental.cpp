// core::IncrementalAtoms: the maintained partition must be bit-identical
// to a full compute_atoms() recompute over the maintained tables at every
// chunk boundary, for any chunking of the update stream and any thread
// count, and the atoms.incr.* work counters must depend only on the
// record sequence and the flush schedule — never on chunking or threads.
// Also pins the analyze() wiring (AnalysisConfig::incremental), the
// bga_atoms --trend batch error-handling contract (cli/trend.h), and the
// DatasetView configurable chunk size the matrix here relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bgp/io.h"
#include "bgp/views.h"
#include "cli/trend.h"
#include "core/analyze.h"
#include "core/incremental.h"
#include "core/longitudinal.h"
#include "testutil.h"

namespace bgpatoms::core {
namespace {

using test::DatasetBuilder;

/// The maintained partition vs the recompute oracle: materialized atoms,
/// indexes and fingerprint must match compute_atoms() over the rebuilt
/// tables at thread counts {1, 2, 8}. (Atom::paths ids agree because the
/// rebuilt snapshot carries the same evolving pool the live set snapshots.)
void expect_matches_recompute(IncrementalAtoms& inc) {
  const AtomSet live = inc.atoms();
  const std::uint64_t live_fp = inc.partition_fingerprint();
  const SanitizedSnapshot rebuilt = inc.rebuild_snapshot();
  for (int threads : {1, 2, 8}) {
    AtomOptions opt;
    opt.threads = threads;
    const AtomSet full = compute_atoms(rebuilt, opt);
    ASSERT_EQ(live.atoms.size(), full.atoms.size());
    EXPECT_EQ(live.atoms, full.atoms);
    EXPECT_EQ(live.atom_of, full.atom_of);
    EXPECT_EQ(live.atoms_by_origin, full.atoms_by_origin);
    EXPECT_EQ(live_fp, partition_fingerprint(full));
  }
}

/// Cheap per-boundary identity probe (no atom bodies materialized).
std::uint64_t recompute_fingerprint(const IncrementalAtoms& inc) {
  const SanitizedSnapshot rebuilt = inc.rebuild_snapshot();
  return partition_fingerprint(compute_atoms(rebuilt));
}

/// Three peers, four prefixes, two of them signature-identical (one
/// seed atom of size 2), plus an update tail exercising announce /
/// withdraw / re-announce / new-path / unknown-prefix records.
DatasetBuilder churn_dataset() {
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 1")
      .route("10.1.0.0/16", "100 1")
      .route("10.2.0.0/16", "100 2")
      .route("10.3.0.0/16", "100 3 1");
  b.peer(200)
      .route("10.0.0.0/16", "200 1")
      .route("10.1.0.0/16", "200 1")
      .route("10.2.0.0/16", "200 2")
      .route("10.3.0.0/16", "200 3 1");
  b.peer(300)
      .route("10.0.0.0/16", "300 1")
      .route("10.1.0.0/16", "300 1")
      .route("10.2.0.0/16", "300 2")
      .route("10.3.0.0/16", "300 1");
  // Split the {10.0, 10.1} atom, churn 10.2, withdraw 10.3 at one VP,
  // re-announce, touch a prefix the snapshot never carried (ignored),
  // then remerge the split pair.
  b.update(10, 0, "100 9 1", {"10.0.0.0/16"});
  b.update(20, 1, "200 2 2", {"10.2.0.0/16"});
  b.update(30, 2, "", {}, {"10.3.0.0/16"});
  b.update(40, 0, "100 5", {"10.9.0.0/16"});  // not in the snapshot
  b.update(50, 2, "300 4 1", {"10.3.0.0/16"});
  b.update(60, 1, "200 1", {"10.1.0.0/16"}, {"10.1.0.0/16"});
  b.update(70, 0, "100 1", {"10.0.0.0/16"});
  b.update(80, 2, "300 2", {"10.2.0.0/16"});
  b.update(90, 1, "200 3 1", {"10.3.0.0/16"});
  return b;
}

TEST(IncrementalAtoms, SeedMatchesBatchKernels) {
  DatasetBuilder b = churn_dataset();
  const auto snap = sanitize(b.dataset(), 0, test::lax_config());
  IncrementalAtoms inc(snap, b.dataset().paths);
  EXPECT_EQ(inc.num_prefixes(), snap.prefixes.size());
  EXPECT_EQ(inc.num_vps(), snap.vps.size());
  expect_matches_recompute(inc);
  // Seeding does no update work.
  EXPECT_EQ(inc.counters().records, 0u);
  EXPECT_EQ(inc.counters().cell_writes, 0u);
  EXPECT_EQ(inc.counters().splits, 0u);
  EXPECT_EQ(inc.counters().merges, 0u);
  // And the seed partition digests equal to the batch one.
  const AtomSet batch = compute_atoms(snap);
  EXPECT_EQ(inc.partition_fingerprint(), partition_fingerprint(batch));
}

TEST(IncrementalAtoms, BitIdenticalAtEveryBoundaryForAnyChunking) {
  DatasetBuilder b = churn_dataset();
  const auto& ds = b.dataset();
  const auto snap = sanitize(ds, 0, test::lax_config());

  std::vector<std::uint64_t> final_fp;
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{65536}, std::size_t{0}}) {
    bgp::DatasetView view(ds);
    view.set_chunk_size(chunk);
    IncrementalAtoms inc(snap, ds.paths);
    for (auto span = view.next_chunk(); !span.empty();
         span = view.next_chunk()) {
      inc.apply(span);
      // Every chunk boundary is a snapshot boundary: the maintained
      // partition must equal a full recompute right here.
      EXPECT_EQ(inc.partition_fingerprint(), recompute_fingerprint(inc))
          << "chunk size " << chunk;
    }
    EXPECT_EQ(inc.counters().records, ds.updates.size());
    expect_matches_recompute(inc);
    final_fp.push_back(inc.partition_fingerprint());
  }
  for (const std::uint64_t fp : final_fp) EXPECT_EQ(fp, final_fp.front());
}

TEST(IncrementalAtoms, CountersIndependentOfChunkingAndThreads) {
  DatasetBuilder b = churn_dataset();
  const auto& ds = b.dataset();
  const auto snap = sanitize(ds, 0, test::lax_config());

  // Same flush schedule everywhere (flush once, at the end): every
  // counter must be bit-equal across chunkings and thread counts.
  std::vector<IncrementalAtoms::Counters> all;
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{5}, std::size_t{0}}) {
    for (int threads : {1, 2, 8}) {
      AtomOptions opt;
      opt.threads = threads;
      bgp::DatasetView view(ds);
      view.set_chunk_size(chunk);
      IncrementalAtoms inc(snap, ds.paths, opt);
      inc.consume(view);
      (void)inc.partition_fingerprint();  // the one flush
      all.push_back(inc.counters());
    }
  }
  for (const auto& c : all) {
    EXPECT_EQ(c, all.front());
  }
  EXPECT_EQ(all.front().records, ds.updates.size());
  EXPECT_EQ(all.front().flushes, 1u);
  EXPECT_GT(all.front().cell_writes, 0u);
  EXPECT_GT(all.front().dirty_rows, 0u);
}

TEST(IncrementalAtoms, SplitThenRemerge) {
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 1").route("10.1.0.0/16", "100 1");
  b.peer(200).route("10.0.0.0/16", "200 1").route("10.1.0.0/16", "200 1");
  const auto& ds = b.dataset();
  const auto snap = sanitize(ds, 0, test::lax_config());
  IncrementalAtoms inc(snap, ds.paths);
  const std::uint64_t seed_fp = inc.partition_fingerprint();
  ASSERT_EQ(inc.atoms().atoms.size(), 1u);  // {10.0, 10.1} share signatures

  // Re-route 10.0.0.0/16 at peer 100: the size-2 class splits.
  bgp::UpdateRecord split;
  split.timestamp = 10;
  split.peer = 0;
  split.collector = 0;
  split.path = b.dataset().paths.intern(*net::AsPath::parse("100 2 1"));
  split.announced.push_back(
      b.dataset().prefixes.intern(*net::Prefix::parse("10.0.0.0/16")));
  inc.apply(std::span<const bgp::UpdateRecord>(&split, 1));
  EXPECT_NE(inc.partition_fingerprint(), seed_fp);
  EXPECT_EQ(inc.atoms().atoms.size(), 2u);
  EXPECT_EQ(inc.counters().splits, 1u);
  EXPECT_EQ(inc.counters().merges, 0u);
  expect_matches_recompute(inc);

  // Restore the original path: the classes remerge, and the partition
  // digests identical to the seed again.
  bgp::UpdateRecord restore = split;
  restore.timestamp = 20;
  restore.path = b.dataset().paths.intern(*net::AsPath::parse("100 1"));
  inc.apply(std::span<const bgp::UpdateRecord>(&restore, 1));
  EXPECT_EQ(inc.partition_fingerprint(), seed_fp);
  EXPECT_EQ(inc.atoms().atoms.size(), 1u);
  EXPECT_EQ(inc.counters().merges, 1u);
  expect_matches_recompute(inc);
}

TEST(IncrementalAtoms, WithdrawAndReannounceInOneRecordNetsToAnnouncement) {
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 1").route("10.1.0.0/16", "100 1");
  b.peer(200).route("10.0.0.0/16", "200 1").route("10.1.0.0/16", "200 1");
  // One record both withdraws and announces 10.1.0.0/16 with its current
  // path (update 60 in churn_dataset does the same at scale): RIB
  // semantics say the announcement wins, so the partition is unchanged.
  b.update(10, 1, "200 1", {"10.1.0.0/16"}, {"10.1.0.0/16"});
  // And one where the re-announce carries a new path: the new path wins
  // (not the withdrawal, not the old value).
  b.update(20, 0, "100 7 1", {"10.0.0.0/16"}, {"10.0.0.0/16"});
  const auto& ds = b.dataset();
  const auto snap = sanitize(ds, 0, test::lax_config());

  IncrementalAtoms inc(snap, ds.paths);
  const std::uint64_t seed_fp = inc.partition_fingerprint();
  inc.apply(std::span<const bgp::UpdateRecord>(ds.updates.data(), 1));
  EXPECT_EQ(inc.partition_fingerprint(), seed_fp);
  expect_matches_recompute(inc);

  inc.apply(std::span<const bgp::UpdateRecord>(ds.updates.data() + 1, 1));
  EXPECT_NE(inc.partition_fingerprint(), seed_fp);
  const SanitizedSnapshot rebuilt = inc.rebuild_snapshot();
  const bgp::PathId p = rebuilt.vps[0].path_for(
      b.dataset().prefixes.intern(*net::Prefix::parse("10.0.0.0/16")));
  EXPECT_EQ(rebuilt.paths.get(p).to_string(), "100 7 1");
  expect_matches_recompute(inc);
}

TEST(IncrementalAtoms, IgnoresUnknownPeersPrefixesAndDroppedPaths) {
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 1");
  b.peer(200).route("10.0.0.0/16", "200 1");
  b.update(10, 99, "100 2", {"10.0.0.0/16"});     // peer never existed
  b.update(20, 0, "100 5", {"10.9.0.0/16"});      // prefix not retained
  b.update(30, 0, "100 [2 3] 1", {"10.0.0.0/16"});  // multi-member AS_SET
  const auto& ds = b.dataset();
  const auto snap = sanitize(ds, 0, test::lax_config());

  IncrementalAtoms inc(snap, ds.paths);
  const std::uint64_t seed_fp = inc.partition_fingerprint();
  bgp::DatasetView view(ds);
  inc.consume(view);
  // All three records are consumed but none touches a cell — the same
  // records sanitize would have dropped from a captured table.
  EXPECT_EQ(inc.counters().records, 3u);
  EXPECT_EQ(inc.counters().cell_writes, 0u);
  EXPECT_EQ(inc.partition_fingerprint(), seed_fp);
  expect_matches_recompute(inc);
}

TEST(IncrementalAtoms, SingletonAsSetExpandsLikeSanitize) {
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 1");
  b.peer(200).route("10.0.0.0/16", "200 1");
  b.update(10, 0, "100 [5] 1", {"10.0.0.0/16"});
  const auto& ds = b.dataset();
  const auto snap = sanitize(ds, 0, test::lax_config());

  IncrementalAtoms inc(snap, ds.paths);
  bgp::DatasetView view(ds);
  inc.consume(view);
  EXPECT_EQ(inc.counters().cell_writes, 1u);
  const SanitizedSnapshot rebuilt = inc.rebuild_snapshot();
  const bgp::PathId p = rebuilt.vps[0].path_for(
      b.dataset().prefixes.intern(*net::Prefix::parse("10.0.0.0/16")));
  // Mirrors sanitize's AS_SET policy: the singleton set is expanded into
  // the sequence before interning.
  EXPECT_EQ(rebuilt.paths.get(p).to_string(), "100 5 1");
  expect_matches_recompute(inc);
}

TEST(IncrementalAtoms, UpdatePeerIndicesSurviveSanitizePeerRemoval) {
  // Peer 100 is a partial feed that full-feed filtering drops; update
  // records still address peers by their *raw* snapshot index, so raw
  // index 0 must be ignored and raw index 2 must land on AS 300's column.
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 1");
  b.peer(200)
      .route("10.0.0.0/16", "200 1")
      .route("10.1.0.0/16", "200 1")
      .route("10.2.0.0/16", "200 2")
      .route("10.3.0.0/16", "200 3");
  b.peer(300)
      .route("10.0.0.0/16", "300 1")
      .route("10.1.0.0/16", "300 1")
      .route("10.2.0.0/16", "300 2")
      .route("10.3.0.0/16", "300 3");
  b.update(10, 0, "100 9 1", {"10.1.0.0/16"});  // dropped peer: ignored
  b.update(20, 2, "300 9 1", {"10.1.0.0/16"});  // kept peer, raw index 2
  const auto& ds = b.dataset();
  core::SanitizeConfig config = test::lax_config();
  config.full_feed_only = true;
  const auto snap = sanitize(ds, 0, config);
  ASSERT_EQ(snap.vps.size(), 2u);
  ASSERT_EQ(snap.vps[0].source_index, 1u);
  ASSERT_EQ(snap.vps[1].source_index, 2u);

  IncrementalAtoms inc(snap, ds.paths);
  bgp::DatasetView view(ds);
  inc.consume(view);
  EXPECT_EQ(inc.counters().cell_writes, 1u);  // only the raw-index-2 record
  const SanitizedSnapshot rebuilt = inc.rebuild_snapshot();
  const auto prefix =
      b.dataset().prefixes.intern(*net::Prefix::parse("10.1.0.0/16"));
  EXPECT_EQ(rebuilt.paths.get(rebuilt.vps[1].path_for(prefix)).to_string(),
            "300 9 1");
  // AS 200's column is untouched.
  EXPECT_EQ(rebuilt.paths.get(rebuilt.vps[0].path_for(prefix)).to_string(),
            "200 1");
  expect_matches_recompute(inc);
}

TEST(IncrementalAtoms, StripPrependsModeIsRejected) {
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 100 1");
  const auto snap = sanitize(b.dataset(), 0, test::lax_config());
  AtomOptions opt;
  opt.strip_prepends_before_grouping = true;
  EXPECT_THROW(IncrementalAtoms(snap, b.dataset().paths, opt),
               std::invalid_argument);
}

TEST(DatasetView, ConfigurableChunkSize) {
  DatasetBuilder b = churn_dataset();
  const auto& ds = b.dataset();
  ASSERT_EQ(ds.updates.size(), 9u);

  // Default: the whole span in one chunk, then an empty terminator.
  bgp::DatasetView whole(ds);
  EXPECT_EQ(whole.next_chunk().size(), 9u);
  EXPECT_TRUE(whole.next_chunk().empty());

  // Sized: ceil(9/4) chunks whose concatenation is the original span.
  bgp::DatasetView sized(ds);
  sized.set_chunk_size(4);
  std::vector<bgp::UpdateRecord> seen;
  std::vector<std::size_t> sizes;
  for (auto c = sized.next_chunk(); !c.empty(); c = sized.next_chunk()) {
    sizes.push_back(c.size());
    seen.insert(seen.end(), c.begin(), c.end());
  }
  EXPECT_EQ(sizes, (std::vector<std::size_t>{4, 4, 1}));
  ASSERT_EQ(seen.size(), ds.updates.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].timestamp, ds.updates[i].timestamp);
    EXPECT_EQ(seen[i].peer, ds.updates[i].peer);
  }

  // rewind() restarts the cursor.
  sized.rewind();
  EXPECT_EQ(sized.next_chunk().size(), 4u);
}

TEST(Analyze, IncrementalFlagPopulatesLiveDrift) {
  DatasetBuilder b = churn_dataset();
  const auto& ds = b.dataset();

  AnalysisConfig config;
  config.sanitize = test::lax_config();
  config.with_updates = true;

  bgp::DatasetView plain(ds);
  const AnalysisResult off = analyze(plain, &plain, config);
  ASSERT_TRUE(off.has_reference());
  EXPECT_FALSE(off.live.has_value());

  config.incremental = true;
  bgp::DatasetView view(ds);
  const AnalysisResult on = analyze(view, &view, config);
  ASSERT_TRUE(on.has_reference());
  ASSERT_TRUE(on.live.has_value());
  EXPECT_EQ(on.live->counters.records, ds.updates.size());
  EXPECT_GT(on.live->atoms, 0u);
  EXPECT_GE(on.live->vs_reference.cam, 0.0);
  EXPECT_LE(on.live->vs_reference.cam, 1.0);

  // The maintained path rides alongside correlation without changing it.
  ASSERT_TRUE(off.correlation.has_value());
  ASSERT_TRUE(on.correlation.has_value());
  EXPECT_EQ(off.correlation->updates_seen, on.correlation->updates_seen);

  // Cross-check the reported end-of-stream atom count independently.
  IncrementalAtoms inc(on.reference(), ds.paths, config.atoms);
  bgp::DatasetView replay(ds);
  inc.consume(replay);
  EXPECT_EQ(inc.atoms().atoms.size(), on.live->atoms);
}

TEST(IncrementalAtoms, CampaignScaleRandomizedStream) {
  // A simulator-generated campaign: thousands of prefixes, a real 4-hour
  // update stream, abnormal peers included — the closest in-tests proxy
  // for a live feed. run_campaign itself routes through
  // AnalysisConfig::incremental (with_updates), so Campaign::live is the
  // wired-through result; re-follow the stream here and pin bit-identity.
  CampaignConfig config;
  config.year = 2012.0;
  config.scale = 0.02;
  config.seed = 11;
  config.with_updates = true;
  const Campaign c = run_campaign(config);
  ASSERT_TRUE(c.live.has_value());
  EXPECT_EQ(c.live->counters.records, c.dataset().updates.size());

  IncrementalAtoms inc(c.sanitized.front(), c.dataset().paths);
  bgp::DatasetView view(c.dataset());
  view.set_chunk_size(173);  // deliberately unaligned chunking
  inc.consume(view);
  EXPECT_EQ(inc.atoms().atoms.size(), c.live->atoms);
  expect_matches_recompute(inc);
}

// --- cli/trend.h: the --trend batch error-handling contract --------------

/// Captures everything run_trend wrote to a stdio stream.
class CaptureFile {
 public:
  CaptureFile() : f_(std::tmpfile()) {}
  ~CaptureFile() {
    if (f_) std::fclose(f_);
  }
  std::FILE* file() { return f_; }
  std::string text() {
    std::fflush(f_);
    std::rewind(f_);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f_)) > 0) out.append(buf, n);
    return out;
  }

 private:
  std::FILE* f_;
};

TEST(RunTrend, OneFailingArchiveDoesNotAbortTheBatch) {
  DatasetBuilder b = churn_dataset();
  const auto& ds = b.dataset();
  AnalysisConfig config;
  config.sanitize = test::lax_config();
  config.with_updates = true;
  config.incremental = true;

  CaptureFile out, err;
  const int rc = cli::run_trend(
      {"good1.bga", "bad.bga", "good2.bga"},
      [&](const std::string& path) -> AnalysisResult {
        if (path == "bad.bga") {
          throw bgp::ArchiveError("bad magic in section header");
        }
        bgp::DatasetView view(ds);
        return analyze(view, &view, config);
      },
      out.file(), err.file());

  // The failure is reported with the failing path, the batch continues
  // (good2 prints a row *after* the failure), and the exit is non-zero.
  EXPECT_EQ(rc, 1);
  const std::string err_text = err.text();
  EXPECT_NE(err_text.find("error: bad.bga: bad magic in section header"),
            std::string::npos);
  EXPECT_EQ(err_text.find("good1.bga"), std::string::npos);
  const std::string out_text = out.text();
  EXPECT_NE(out_text.find("good1.bga"), std::string::npos);
  EXPECT_NE(out_text.find("good2.bga"), std::string::npos);
  EXPECT_EQ(out_text.find("bad.bga"), std::string::npos);
}

TEST(RunTrend, NonArchiveExceptionsAreCaughtToo) {
  // The original bug: only bgp::ArchiveError was caught, so any other
  // std::exception (packing limits, bad_alloc relatives, logic errors
  // from a truncated file) aborted the whole batch.
  CaptureFile out, err;
  const int rc = cli::run_trend(
      {"a.bga", "b.bga"},
      [&](const std::string& path) -> AnalysisResult {
        throw std::runtime_error("packing limit exceeded for " + path);
      },
      out.file(), err.file());
  EXPECT_EQ(rc, 1);
  const std::string err_text = err.text();
  EXPECT_NE(err_text.find("error: a.bga: packing limit exceeded for a.bga"),
            std::string::npos);
  EXPECT_NE(err_text.find("error: b.bga:"), std::string::npos);
}

TEST(RunTrend, EmptyArchiveCountsAsFailureAndContinues) {
  DatasetBuilder b = churn_dataset();
  const auto& ds = b.dataset();
  AnalysisConfig config;
  config.sanitize = test::lax_config();

  CaptureFile out, err;
  const int rc = cli::run_trend(
      {"empty.bga", "good.bga"},
      [&](const std::string& path) -> AnalysisResult {
        if (path == "empty.bga") return AnalysisResult{};  // no snapshots
        bgp::DatasetView view(ds);
        return analyze(view, nullptr, config);
      },
      out.file(), err.file());
  EXPECT_EQ(rc, 1);
  EXPECT_NE(err.text().find("error: empty.bga: archive has 0 snapshot(s)"),
            std::string::npos);
  EXPECT_NE(out.text().find("good.bga"), std::string::npos);
}

TEST(RunTrend, AllArchivesHealthyExitsZero) {
  DatasetBuilder b = churn_dataset();
  const auto& ds = b.dataset();
  AnalysisConfig config;
  config.sanitize = test::lax_config();
  config.with_updates = true;
  config.incremental = true;

  CaptureFile out, err;
  const int rc = cli::run_trend(
      {"q1.bga", "q2.bga"},
      [&](const std::string&) -> AnalysisResult {
        bgp::DatasetView view(ds);
        return analyze(view, &view, config);
      },
      out.file(), err.file());
  EXPECT_EQ(rc, 0);
  EXPECT_TRUE(err.text().empty());
  // The live-drift columns are populated (not the "-" placeholder).
  const std::string out_text = out.text();
  EXPECT_NE(out_text.find("atoms_liv"), std::string::npos);
  EXPECT_NE(out_text.find("q1.bga"), std::string::npos);
  EXPECT_NE(out_text.find("q2.bga"), std::string::npos);
}

}  // namespace
}  // namespace bgpatoms::core
