// End-to-end integration tests: full campaigns through run_campaign plus
// cross-module pipeline invariants.
#include <gtest/gtest.h>

#include "bgp/archive.h"
#include "core/longitudinal.h"
#include "core/splits.h"

namespace bgpatoms::core {
namespace {

TEST(Integration, SmallV4CampaignEndToEnd) {
  CampaignConfig config;
  config.year = 2012.0;
  config.scale = 0.01;
  config.seed = 3;
  config.with_updates = true;
  config.with_stability = true;
  const Campaign c = run_campaign(config);

  ASSERT_EQ(c.atom_sets.size(), 4u);  // t0, +8h, +24h, +1w
  EXPECT_GT(c.stats.prefixes, 100u);
  EXPECT_GT(c.stats.ases, 20u);
  EXPECT_GE(c.stats.atoms, c.stats.ases / 2);

  ASSERT_TRUE(c.stability_8h.has_value());
  ASSERT_TRUE(c.stability_1w.has_value());
  EXPECT_GT(c.stability_8h->cam, 0.7);
  EXPECT_LE(c.stability_8h->cam, 1.0);
  // Stability can only degrade with the horizon.
  EXPECT_GE(c.stability_8h->cam, c.stability_24h->cam - 0.02);
  EXPECT_GE(c.stability_24h->cam, c.stability_1w->cam - 0.02);
  EXPECT_GE(c.stability_8h->mpm, c.stability_8h->cam);

  ASSERT_TRUE(c.correlation.has_value());
  EXPECT_GT(c.correlation->updates_seen, 0u);
}

TEST(Integration, AtomsPartitionSanitizedPrefixes) {
  CampaignConfig config;
  config.year = 2016.0;
  config.scale = 0.01;
  config.seed = 4;
  const Campaign c = run_campaign(config);
  const auto& atoms = c.atoms();
  const auto& snap = c.sanitized.front();
  std::size_t total = 0;
  for (const auto& atom : atoms.atoms) {
    EXPECT_GT(atom.size(), 0u);
    total += atom.size();
  }
  EXPECT_EQ(total, snap.prefixes.size());
  EXPECT_EQ(atoms.atom_of.size(), snap.prefixes.size());
}

TEST(Integration, AtomPathsAgreeWithVpTables) {
  // Spot-check: the paths recorded per atom match the sanitized tables.
  CampaignConfig config;
  config.year = 2016.0;
  config.scale = 0.01;
  config.seed = 4;
  const Campaign c = run_campaign(config);
  const auto& atoms = c.atoms();
  const auto& snap = c.sanitized.front();
  std::size_t checked = 0;
  for (const auto& atom : atoms.atoms) {
    if (checked >= 50) break;
    for (const auto& [vp, path] : atom.paths) {
      for (bgp::PrefixId p : atom.prefixes) {
        ASSERT_EQ(snap.vps[vp].path_for(p), path);
      }
    }
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(Integration, MoasShareStaysBelowPaperBound) {
  CampaignConfig config;
  config.year = 2020.0;
  config.scale = 0.02;
  config.seed = 5;
  const Campaign c = run_campaign(config);
  EXPECT_LT(c.stats.moas_prefix_share, 0.05);  // §2.4.3: "below 5%"
}

TEST(Integration, V6CampaignWithFiti) {
  CampaignConfig config;
  config.family = net::Family::kIPv6;
  config.year = 2022.0;
  config.scale = 0.04;
  config.seed = 6;
  const Campaign c = run_campaign(config);
  EXPECT_GT(c.era.fiti_ases, 0);
  EXPECT_GT(c.stats.atoms, 0u);
  // FITI inflates the single-prefix-AS population.
  EXPECT_GT(c.stats.one_atom_as_share(), 0.4);
}

TEST(Integration, DatasetSurvivesArchiveRoundTrip) {
  CampaignConfig config;
  config.year = 2010.0;
  config.scale = 0.005;
  config.seed = 7;
  config.with_updates = true;
  const Campaign c = run_campaign(config);
  const auto& ds = c.dataset();

  const auto image = bgp::write_archive(ds);
  const bgp::Dataset back = bgp::read_archive(image);

  // Re-running the analysis over the deserialized dataset gives identical
  // atoms.
  const auto snap2 = sanitize(back, 0);
  const auto atoms2 = compute_atoms(snap2);
  EXPECT_EQ(atoms2.atoms.size(), c.atoms().atoms.size());
  const auto stats2 = general_stats(atoms2);
  EXPECT_EQ(stats2.prefixes, c.stats.prefixes);
  EXPECT_EQ(stats2.mean_atom_size, c.stats.mean_atom_size);
}

TEST(Integration, CampaignDeterminism) {
  CampaignConfig config;
  config.year = 2014.0;
  config.scale = 0.01;
  config.seed = 11;
  config.with_stability = true;
  const Campaign a = run_campaign(config);
  const Campaign b = run_campaign(config);
  EXPECT_EQ(a.stats.atoms, b.stats.atoms);
  EXPECT_EQ(a.stats.prefixes, b.stats.prefixes);
  EXPECT_DOUBLE_EQ(a.stability_1w->cam, b.stability_1w->cam);
  EXPECT_DOUBLE_EQ(a.stability_1w->mpm, b.stability_1w->mpm);
}

TEST(Integration, RunQuarterProducesTrendMetrics) {
  const QuarterMetrics m = run_quarter(net::Family::kIPv4, 2008.0, 0.008, 2);
  EXPECT_EQ(m.year, 2008.0);
  double sum = 0;
  for (int d = 1; d <= 5; ++d) sum += m.formed_at[d];
  EXPECT_GT(sum, 0.9);  // nearly all atoms form within distance 5
  EXPECT_GT(m.cam_8h, 0.5);
  EXPECT_GE(m.mpm_8h, m.cam_8h);
  EXPECT_GT(m.full_feed_peers, 0u);
  EXPECT_GT(m.full_feed_threshold, 0u);
}

TEST(Integration, DailySplitPipeline) {
  // Daily-event mode + split detection: the Fig. 6/7 pipeline in miniature.
  routing::SimOptions opt;
  opt.seed = 13;
  opt.weekly_churn = false;
  opt.daily_event_rate = 25.0;
  routing::Simulator sim(
      topo::generate_topology(topo::era_params_v4(2019.0, 0.01), 13), opt);

  std::deque<SanitizedSnapshot> snaps;
  std::deque<AtomSet> atom_sets;
  std::size_t total_events = 0;
  for (int day = 0; day < 6; ++day) {
    sim.advance_to(day * routing::kDay);
    sim.capture();
  }
  const auto& ds = sim.dataset();
  for (std::size_t i = 0; i < ds.snapshots.size(); ++i) {
    snaps.push_back(sanitize(ds, i));
    atom_sets.push_back(compute_atoms(snaps.back()));
  }
  for (std::size_t i = 0; i + 2 < atom_sets.size(); ++i) {
    const auto events =
        detect_splits(atom_sets[i], atom_sets[i + 1], atom_sets[i + 2]);
    for (const auto& ev : events) {
      EXPECT_GE(ev.atom_size, 2u);
      total_events += 1;
    }
  }
  EXPECT_GT(total_events, 0u);
}

TEST(Integration, CampaignInfrastructureOverrides) {
  // The 2002 reproduction pins RRC00's 13 full-feed peers (§3.1).
  CampaignConfig config;
  config.year = 2002.04;
  config.scale = 0.01;
  config.seed = 9;
  config.force_collectors = 1;
  config.force_peers = 13;
  config.force_full_feed_frac = 1.0;
  config.sanitize.max_prefix_length = 128;
  config.sanitize.min_collectors = 1;
  config.sanitize.min_peer_ases = 1;
  const Campaign c = run_campaign(config);
  EXPECT_EQ(c.era.n_collectors, 1);
  EXPECT_EQ(c.era.n_peers, 13);
  EXPECT_EQ(c.dataset().collectors.size(), 1u);
  EXPECT_EQ(c.sanitized.front().report.peers_in, 13u);
  EXPECT_EQ(c.sanitized.front().report.full_feed_peers, 13u);
}

TEST(Integration, SanitizerAblationKeepsMorePrefixesWithoutFilters) {
  CampaignConfig config;
  config.year = 2020.0;
  config.scale = 0.01;
  config.seed = 10;
  const Campaign c = run_campaign(config);
  const auto& ds = c.dataset();
  SanitizeConfig no_filters;
  no_filters.filter_prefixes = false;
  no_filters.max_prefix_length = 128;
  const auto relaxed = sanitize(ds, 0, no_filters);
  EXPECT_GE(relaxed.report.prefixes_kept,
            c.sanitized.front().report.prefixes_kept);
}

}  // namespace
}  // namespace bgpatoms::core
