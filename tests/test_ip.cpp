// Unit tests for net::IpAddress and net::Prefix.
#include <gtest/gtest.h>

#include "net/ip.h"
#include "net/prefix.h"

namespace bgpatoms::net {
namespace {

TEST(IpAddress, ParseV4Basic) {
  const auto a = IpAddress::parse("192.0.2.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->family(), Family::kIPv4);
  EXPECT_EQ(a->v4_value(), 0xC0000201u);
}

TEST(IpAddress, ParseV4Boundaries) {
  EXPECT_EQ(IpAddress::parse("0.0.0.0")->v4_value(), 0u);
  EXPECT_EQ(IpAddress::parse("255.255.255.255")->v4_value(), 0xFFFFFFFFu);
}

TEST(IpAddress, ParseV4Rejects) {
  EXPECT_FALSE(IpAddress::parse("256.0.0.1").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.").has_value());
  EXPECT_FALSE(IpAddress::parse(".1.2.3.4").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
  EXPECT_FALSE(IpAddress::parse("").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4 ").has_value());
}

TEST(IpAddress, FormatV4) {
  EXPECT_EQ(IpAddress::v4(0xC0000201u).to_string(), "192.0.2.1");
  EXPECT_EQ(IpAddress::v4(0).to_string(), "0.0.0.0");
}

TEST(IpAddress, ParseV6Full) {
  const auto a = IpAddress::parse("2001:db8:0:0:0:0:0:1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->family(), Family::kIPv6);
  EXPECT_EQ(a->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(a->lo(), 1ULL);
}

TEST(IpAddress, ParseV6Compressed) {
  EXPECT_EQ(IpAddress::parse("2001:db8::1")->lo(), 1ULL);
  EXPECT_EQ(IpAddress::parse("2001:db8::1")->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(IpAddress::parse("::")->hi(), 0ULL);
  EXPECT_EQ(IpAddress::parse("::")->lo(), 0ULL);
  EXPECT_EQ(IpAddress::parse("::1")->lo(), 1ULL);
  EXPECT_EQ(IpAddress::parse("1::")->hi(), 0x0001000000000000ULL);
  EXPECT_EQ(IpAddress::parse("1::")->lo(), 0ULL);
}

TEST(IpAddress, ParseV6Rejects) {
  EXPECT_FALSE(IpAddress::parse("2001:db8").has_value());
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(IpAddress::parse("1::2::3").has_value());
  EXPECT_FALSE(IpAddress::parse("12345::").has_value());
  EXPECT_FALSE(IpAddress::parse(":1:2:3:4:5:6:7").has_value());
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:").has_value());
  EXPECT_FALSE(IpAddress::parse("g::1").has_value());
}

TEST(IpAddress, FormatV6CompressesLongestZeroRun) {
  EXPECT_EQ(IpAddress::v6(0x20010db800000000ULL, 1).to_string(), "2001:db8::1");
  EXPECT_EQ(IpAddress::v6(0, 0).to_string(), "::");
  EXPECT_EQ(IpAddress::v6(0, 1).to_string(), "::1");
  EXPECT_EQ(IpAddress::v6(0x0001000000000000ULL, 0).to_string(), "1::");
}

TEST(IpAddress, FormatV6NoCompressionForSingleZero) {
  // A lone zero group is not compressed to "::" (RFC 5952 style).
  const auto a = IpAddress::parse("1:0:2:3:4:5:6:7");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "1:0:2:3:4:5:6:7");
}

TEST(IpAddress, RoundTripV6) {
  for (const char* text :
       {"2001:db8::1", "::", "::1", "1::", "fe80::1:2:3",
        "2001:db8:1:2:3:4:5:6", "240a:a000::"}) {
    const auto a = IpAddress::parse(text);
    ASSERT_TRUE(a.has_value()) << text;
    EXPECT_EQ(a->to_string(), text);
  }
}

TEST(IpAddress, BitIndexing) {
  const auto a = IpAddress::v4(0x80000001u);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(31));
  const auto b = IpAddress::v6(0x8000000000000000ULL, 1);
  EXPECT_TRUE(b.bit(0));
  EXPECT_FALSE(b.bit(1));
  EXPECT_TRUE(b.bit(127));
  EXPECT_FALSE(b.bit(126));
}

TEST(IpAddress, MaskedClearsHostBits) {
  EXPECT_EQ(IpAddress::v4(0xC0A80101u).masked(24),
            IpAddress::v4(0xC0A80100u));
  EXPECT_EQ(IpAddress::v4(0xFFFFFFFFu).masked(0), IpAddress::v4(0));
  EXPECT_EQ(IpAddress::v4(0xC0A80101u).masked(32),
            IpAddress::v4(0xC0A80101u));
  EXPECT_EQ(IpAddress::v6(0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL)
                .masked(64),
            IpAddress::v6(0xFFFFFFFFFFFFFFFFULL, 0));
  EXPECT_EQ(IpAddress::v6(0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL)
                .masked(48),
            IpAddress::v6(0xFFFFFFFFFFFF0000ULL, 0));
  EXPECT_EQ(IpAddress::v6(0xAAULL, 0xFFFFFFFFFFFFFFFFULL).masked(96),
            IpAddress::v6(0xAAULL, 0xFFFFFFFF00000000ULL));
}

TEST(Prefix, ConstructionCanonicalizes) {
  const Prefix a(IpAddress::v4(0xC0A80101u), 24);
  EXPECT_EQ(a.address(), IpAddress::v4(0xC0A80100u));
  EXPECT_EQ(a.length(), 24);
  EXPECT_EQ(a, Prefix::v4(0xC0A80100u, 24));
}

TEST(Prefix, ParseAndFormat) {
  const auto p = Prefix::parse("10.0.0.0/8");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.0.0.0/8");
  const auto q = Prefix::parse("2001:db8::/32");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->to_string(), "2001:db8::/32");
  // Host bits are cleared on parse too.
  EXPECT_EQ(Prefix::parse("10.1.2.3/8")->to_string(), "10.0.0.0/8");
}

TEST(Prefix, ParseRejects) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Prefix::parse("2001:db8::/129").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/a").has_value());
  EXPECT_FALSE(Prefix::parse("/8").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/8x").has_value());
}

TEST(Prefix, ContainsPrefix) {
  const auto p8 = *Prefix::parse("10.0.0.0/8");
  const auto p16 = *Prefix::parse("10.1.0.0/16");
  const auto other = *Prefix::parse("11.0.0.0/16");
  EXPECT_TRUE(p8.contains(p16));
  EXPECT_FALSE(p16.contains(p8));
  EXPECT_TRUE(p8.contains(p8));
  EXPECT_FALSE(p8.contains(other));
  // Cross-family containment is always false.
  EXPECT_FALSE(p8.contains(*Prefix::parse("::/0")));
}

TEST(Prefix, ContainsAddress) {
  const auto p = *Prefix::parse("192.0.2.0/24");
  EXPECT_TRUE(p.contains(*IpAddress::parse("192.0.2.255")));
  EXPECT_FALSE(p.contains(*IpAddress::parse("192.0.3.0")));
}

TEST(Prefix, OrderingGroupsCoveringBlocksFirst) {
  const auto p8 = *Prefix::parse("10.0.0.0/8");
  const auto p16 = *Prefix::parse("10.0.0.0/16");
  EXPECT_LT(p8, p16);  // same address, shorter first
  EXPECT_LT(*Prefix::parse("9.0.0.0/8"), p8);
}

TEST(Prefix, HashDistinguishesLengthAndFamily) {
  EXPECT_NE(Prefix::parse("10.0.0.0/8")->hash(),
            Prefix::parse("10.0.0.0/16")->hash());
  EXPECT_NE(Prefix::v4(0, 0).hash(), Prefix::v6(0, 0, 0).hash());
}

TEST(Prefix, ZeroLengthContainsEverything) {
  const auto def = *Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(def.contains(*Prefix::parse("203.0.113.0/24")));
}

}  // namespace
}  // namespace bgpatoms::net
