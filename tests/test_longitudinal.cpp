// Tests for the parallel longitudinal sweep engine (run_sweep) and the
// QuarterMetrics it extracts.
#include <gtest/gtest.h>

#include <vector>

#include "core/longitudinal.h"
#include "core/parallel.h"

namespace bgpatoms::core {
namespace {

std::vector<SweepJob> small_jobs() {
  std::vector<SweepJob> jobs;
  for (int q = 0; q < 4; ++q)
    jobs.push_back(quarter_job(net::Family::kIPv4, 2006.0 + 2.0 * q, 0.005,
                               100 + q));
  return jobs;
}

TEST(RunSweep, BitIdenticalAcrossThreadCounts) {
  const auto jobs = small_jobs();
  SweepOptions opt;
  opt.threads = 1;
  const auto one = run_sweep(jobs, opt);
  opt.threads = 2;
  const auto two = run_sweep(jobs, opt);
  opt.threads = 8;
  const auto eight = run_sweep(jobs, opt);

  ASSERT_EQ(one.size(), jobs.size());
  // QuarterMetrics operator== is field-exact, so this is bit-identity of
  // every derived statistic, not approximate agreement.
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(RunSweep, MatchesSequentialRunQuarter) {
  const auto jobs = small_jobs();
  SweepOptions opt;
  opt.threads = 4;
  const auto metrics = run_sweep(jobs, opt);
  ASSERT_EQ(metrics.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& c = jobs[i].config;
    EXPECT_EQ(metrics[i], run_quarter(c.family, c.year, c.scale, c.seed))
        << "job " << i;
  }
}

TEST(RunSweep, DerivesSeedsForUnseededJobs) {
  // seed == 0 means "derive from (base_seed, index)": the job must behave
  // exactly like an explicitly seeded one, independent of thread count.
  std::vector<SweepJob> unseeded(2);
  for (auto& job : unseeded) {
    job.config.year = 2010.0;
    job.config.scale = 0.005;
    job.config.seed = 0;
  }
  SweepOptions opt;
  opt.base_seed = 42;

  opt.threads = 1;
  const auto seq = run_sweep(unseeded, opt);
  opt.threads = 8;
  const auto par = run_sweep(unseeded, opt);
  EXPECT_EQ(seq, par);

  std::vector<SweepJob> explicit_jobs = unseeded;
  explicit_jobs[0].config.seed = derive_seed(42, 0);
  explicit_jobs[1].config.seed = derive_seed(42, 1);
  EXPECT_EQ(seq, run_sweep(explicit_jobs, opt));
  // Distinct derived seeds give distinct campaigns.
  EXPECT_NE(seq[0].stats.prefixes, 0u);
  EXPECT_NE(explicit_jobs[0].config.seed, explicit_jobs[1].config.seed);
}

TEST(QuarterMetricsTest, TwentyFourHourStabilityPopulated) {
  // Regression: run_quarter used to drop the 24h window — cam_24h/mpm_24h
  // stayed 0 even though the campaign captured the +24h snapshot.
  const QuarterMetrics m = run_quarter(net::Family::kIPv4, 2008.0, 0.008, 2);
  EXPECT_GT(m.cam_24h, 0.0);
  EXPECT_GT(m.mpm_24h, 0.0);
  EXPECT_GE(m.mpm_24h, m.cam_24h);
  // The windows nest: a 24h-stable table can't beat the 8h one.
  EXPECT_LE(m.cam_24h, m.cam_8h);
  EXPECT_GE(m.cam_24h, m.cam_1w);
}

TEST(QuarterMetricsTest, DataQualitySharesPopulated) {
  const QuarterMetrics m = run_quarter(net::Family::kIPv4, 2012.0, 0.008, 3);
  EXPECT_GT(m.peers_in, 0u);
  EXPECT_GE(m.peers_in, m.full_feed_peers);
  EXPECT_GE(m.asset_path_share, 0.0);
  EXPECT_LT(m.asset_path_share, 0.05);
  EXPECT_GE(m.visibility_dropped_share, 0.0);
  EXPECT_LT(m.visibility_dropped_share, 0.5);
}

TEST(RunSweep, EmptyJobListIsNoop) {
  EXPECT_TRUE(run_sweep({}).empty());
}

}  // namespace
}  // namespace bgpatoms::core
