// Tests for MRT (RFC 6396) import/export.
#include <gtest/gtest.h>

#include <filesystem>

#include "bgp/mrt.h"
#include "core/atoms.h"
#include "core/sanitize.h"
#include "routing/simulator.h"

namespace bgpatoms::bgp {
namespace {

Dataset tiny_dataset(net::Family family = net::Family::kIPv4) {
  Dataset ds;
  ds.family = family;
  ds.collectors = {"rrc00", "route-views.2"};
  const bool v6 = family == net::Family::kIPv6;
  const PathId p1 = ds.paths.intern(*net::AsPath::parse("64496 3356 15169"));
  const PathId p2 = ds.paths.intern(*net::AsPath::parse("64497 174 15169"));
  const PrefixId a =
      ds.prefixes.intern(*net::Prefix::parse(v6 ? "2001:db8::/32" : "8.8.8.0/24"));
  const PrefixId b = ds.prefixes.intern(
      *net::Prefix::parse(v6 ? "2001:db9::/32" : "10.0.0.0/8"));
  const auto comms = ds.communities.intern({make_community(3356, 100)});

  Snapshot snap;
  snap.timestamp = 1'100'000'000;
  PeerFeed f1;
  f1.peer = {64496,
             v6 ? net::IpAddress::v6(0x20010db8feed0000ULL, 1)
                : net::IpAddress::v4(0xC6120001u),
             0};
  f1.records.push_back({a, p1, comms, RecordStatus::kValid});
  f1.records.push_back({b, p1, 0, RecordStatus::kValid});
  snap.peers.push_back(f1);
  PeerFeed f2;
  f2.peer = {64497,
             v6 ? net::IpAddress::v6(0x20010db8feed0000ULL, 2)
                : net::IpAddress::v4(0xC6120002u),
             0};
  f2.records.push_back({a, p2, 0, RecordStatus::kValid});
  snap.peers.push_back(f2);
  // A peer on another collector: excluded from rrc00's MRT file.
  PeerFeed f3;
  f3.peer = {64498,
             v6 ? net::IpAddress::v6(0x20010db8feed0000ULL, 3)
                : net::IpAddress::v4(0xC6120003u),
             1};
  f3.records.push_back({b, p2, 0, RecordStatus::kValid});
  snap.peers.push_back(f3);
  ds.snapshots.push_back(std::move(snap));

  UpdateRecord u;
  u.timestamp = 1'100'000'060;
  u.collector = 0;
  u.peer = 0;
  u.path = p1;
  u.communities = comms;
  u.announced = {a};
  if (!v6) u.withdrawn = {b};
  ds.updates.push_back(u);
  return ds;
}

TEST(Mrt, RibRoundTripV4) {
  const Dataset ds = tiny_dataset();
  const auto bytes = write_mrt_rib(ds, 0, /*collector=*/0);
  const Dataset back = read_mrt(bytes);

  EXPECT_EQ(back.family, net::Family::kIPv4);
  ASSERT_EQ(back.collectors.size(), 1u);
  EXPECT_EQ(back.collectors[0], "rrc00");  // view name carries the collector
  ASSERT_EQ(back.snapshots.size(), 1u);
  EXPECT_EQ(back.snapshots[0].timestamp, 1'100'000'000);
  ASSERT_EQ(back.snapshots[0].peers.size(), 2u);  // collector-0 peers only
  EXPECT_EQ(back.snapshots[0].peers[0].peer.asn, 64496u);
  EXPECT_EQ(back.snapshots[0].peers[0].records.size(), 2u);
  EXPECT_EQ(back.snapshots[0].peers[1].records.size(), 1u);

  // Paths and communities survive.
  const auto& rec = back.snapshots[0].peers[0].records[0];
  EXPECT_EQ(back.paths.get(rec.path), *net::AsPath::parse("64496 3356 15169"));
  EXPECT_EQ(back.communities.get(rec.communities),
            (std::vector<Community>{make_community(3356, 100)}));
}

TEST(Mrt, RibRoundTripV6) {
  const Dataset ds = tiny_dataset(net::Family::kIPv6);
  const Dataset back = read_mrt(write_mrt_rib(ds, 0, 0));
  EXPECT_EQ(back.family, net::Family::kIPv6);
  ASSERT_EQ(back.snapshots[0].peers.size(), 2u);
  const auto& rec = back.snapshots[0].peers[0].records[0];
  EXPECT_EQ(back.prefixes.get(rec.prefix), *net::Prefix::parse("2001:db8::/32"));
  EXPECT_FALSE(back.snapshots[0].peers[0].peer.address.is_v4());
}

TEST(Mrt, UpdatesRoundTrip) {
  const Dataset ds = tiny_dataset();
  // RIB first (peer table), then the update trace, as real pipelines do.
  auto bytes = write_mrt_rib(ds, 0, 0);
  const auto updates = write_mrt_updates(ds, 0);
  bytes.insert(bytes.end(), updates.begin(), updates.end());

  const Dataset back = read_mrt(bytes);
  ASSERT_EQ(back.updates.size(), 1u);
  const auto& u = back.updates[0];
  EXPECT_EQ(u.timestamp, 1'100'000'060);
  ASSERT_EQ(u.announced.size(), 1u);
  EXPECT_EQ(back.prefixes.get(u.announced[0]), *net::Prefix::parse("8.8.8.0/24"));
  ASSERT_EQ(u.withdrawn.size(), 1u);
  // The update's peer resolves to the RIB peer with the same identity.
  EXPECT_EQ(back.snapshots[0].peers[u.peer].peer.asn, 64496u);
}

TEST(Mrt, UpdatesWithoutRibCreateImplicitPeers) {
  const Dataset ds = tiny_dataset();
  const Dataset back = read_mrt(write_mrt_updates(ds, 0));
  ASSERT_EQ(back.updates.size(), 1u);
  ASSERT_EQ(back.snapshots.size(), 1u);  // implicit snapshot for peers
  EXPECT_EQ(back.snapshots[0].peers.size(), 1u);
  EXPECT_EQ(back.snapshots[0].peers[0].peer.asn, 64496u);
}

TEST(Mrt, CorruptRecordsAreNotExported) {
  Dataset ds = tiny_dataset();
  ds.snapshots[0].peers[0].records[0].status = RecordStatus::kCorruptSubtype;
  const Dataset back = read_mrt(write_mrt_rib(ds, 0, 0));
  EXPECT_EQ(back.snapshots[0].peers[0].records.size(), 1u);
}

TEST(Mrt, UnknownRecordTypesSkipped) {
  const Dataset ds = tiny_dataset();
  auto bytes = write_mrt_rib(ds, 0, 0);
  // Prepend an OSPFv2 record (type 11) with a 4-byte body.
  std::vector<std::uint8_t> unknown{0, 0, 0, 1, 0, 11, 0, 0,
                                    0, 0, 0, 4, 1, 2, 3, 4};
  unknown.insert(unknown.end(), bytes.begin(), bytes.end());
  const Dataset back = read_mrt(unknown);
  EXPECT_EQ(back.snapshots.size(), 1u);
}

TEST(Mrt, TruncationDetected) {
  const Dataset ds = tiny_dataset();
  const auto bytes = write_mrt_rib(ds, 0, 0);
  EXPECT_THROW(read_mrt(std::span<const std::uint8_t>(bytes.data(),
                                                      bytes.size() - 5)),
               MrtError);
}

TEST(Mrt, RibEntryBeforePeerTableRejected) {
  const Dataset ds = tiny_dataset();
  const auto bytes = write_mrt_rib(ds, 0, 0);
  // Find the first RIB record (after the PEER_INDEX_TABLE) and feed the
  // stream starting there.
  const std::size_t pit_len =
      12 + ((std::size_t{bytes[8]} << 24) | (std::size_t{bytes[9]} << 16) |
            (std::size_t{bytes[10]} << 8) | bytes[11]);
  EXPECT_THROW(
      read_mrt(std::span<const std::uint8_t>(bytes).subspan(pit_len)),
      MrtError);
}

TEST(Mrt, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "test_rib.mrt";
  const Dataset ds = tiny_dataset();
  write_mrt_rib_file(ds, 0, 0, path.string());
  const Dataset back = read_mrt_file(path.string());
  EXPECT_EQ(back.snapshots.size(), 1u);
  std::filesystem::remove(path);
}

TEST(Mrt, SimulatedSnapshotSurvivesMrtAndYieldsSameAtoms) {
  // Full-circle: simulate -> export MRT per collector -> concatenate ->
  // import -> sanitize -> atoms. The atom structure must be identical to
  // the direct pipeline (statuses are dropped by MRT, so run the direct
  // pipeline without abnormal peers for a fair comparison: era 2012 has
  // none).
  routing::Simulator sim(
      topo::generate_topology(topo::era_params_v4(2012.0, 0.005), 5));
  sim.capture();
  const auto& ds = sim.dataset();

  std::vector<std::uint8_t> all;
  for (std::uint16_t c = 0; c < ds.collectors.size(); ++c) {
    const auto bytes = write_mrt_rib(ds, 0, c);
    all.insert(all.end(), bytes.begin(), bytes.end());
  }
  const Dataset back = read_mrt(all);

  const auto direct = core::compute_atoms(core::sanitize(ds, 0));
  // MRT import produces one snapshot per collector's PEER_INDEX_TABLE;
  // merge them back into one by re-homing all peers into snapshot 0.
  Dataset merged = back;
  while (merged.snapshots.size() > 1) {
    auto& extra = merged.snapshots.back();
    for (auto& feed : extra.peers) {
      merged.snapshots[0].peers.push_back(std::move(feed));
    }
    merged.snapshots.pop_back();
  }
  const auto via_mrt = core::compute_atoms(core::sanitize(merged, 0));
  EXPECT_EQ(via_mrt.atoms.size(), direct.atoms.size());
}

}  // namespace
}  // namespace bgpatoms::bgp
