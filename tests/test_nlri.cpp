// Tests for NLRI packing under the BGP message-size limit.
#include <gtest/gtest.h>

#include <numeric>

#include "bgp/nlri.h"

namespace bgpatoms::bgp {
namespace {

struct Fixture {
  Dataset ds;
  PathId path;
  CommunitySetId comms;
  std::vector<PrefixId> prefixes;

  explicit Fixture(int n_prefixes) {
    ds.family = net::Family::kIPv4;
    ds.collectors = {"rrc00"};
    path = ds.paths.intern(net::AsPath::sequence({64496, 3356, 15169}));
    comms = ds.communities.intern({make_community(3356, 100)});
    for (int i = 0; i < n_prefixes; ++i) {
      prefixes.push_back(ds.prefixes.intern(
          net::Prefix::v4(0x0A000000u + (static_cast<std::uint32_t>(i) << 8),
                          24)));
    }
  }
};

TEST(Nlri, PrefixByteEstimate) {
  EXPECT_EQ(nlri_bytes(*net::Prefix::parse("10.0.0.0/24")), 4u);
  EXPECT_EQ(nlri_bytes(*net::Prefix::parse("10.0.0.0/8")), 2u);
  EXPECT_EQ(nlri_bytes(*net::Prefix::parse("0.0.0.0/0")), 1u);
  EXPECT_EQ(nlri_bytes(*net::Prefix::parse("2001:db8::/48")), 7u);
}

TEST(Nlri, AttributeBytesGrowWithPathAndCommunities) {
  const auto p1 = net::AsPath::sequence({1, 2});
  const auto p2 = net::AsPath::sequence({1, 2, 3, 4});
  EXPECT_LT(attribute_bytes(p1, {}), attribute_bytes(p2, {}));
  const std::vector<Community> comms{make_community(1, 2)};
  EXPECT_LT(attribute_bytes(p1, {}), attribute_bytes(p1, comms));
}

TEST(Nlri, SmallBatchFitsOneMessage) {
  Fixture f(5);
  const auto recs =
      pack_updates(f.ds, 100, 0, 0, f.path, f.comms, f.prefixes, {});
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].announced, f.prefixes);
  EXPECT_EQ(recs[0].path, f.path);
  EXPECT_EQ(recs[0].communities, f.comms);
  EXPECT_EQ(recs[0].timestamp, 100);
}

TEST(Nlri, LargeBatchSplitsAcrossMessages) {
  // ~4 bytes per /24 NLRI; 4096-byte messages hold roughly 1000 prefixes.
  Fixture f(2500);
  const auto recs =
      pack_updates(f.ds, 100, 0, 0, f.path, f.comms, f.prefixes, {});
  EXPECT_GE(recs.size(), 3u);
  // Order preserved and nothing lost.
  std::vector<PrefixId> seen;
  for (const auto& r : recs) {
    seen.insert(seen.end(), r.announced.begin(), r.announced.end());
  }
  EXPECT_EQ(seen, f.prefixes);
  // Every message respects the byte budget.
  const PackingLimits limits;
  for (const auto& r : recs) {
    std::size_t used = limits.header_bytes + 4 +
                       attribute_bytes(f.ds.paths.get(f.path),
                                       f.ds.communities.get(f.comms));
    for (PrefixId p : r.announced) used += nlri_bytes(f.ds.prefixes.get(p));
    EXPECT_LE(used, limits.max_message_bytes);
  }
}

TEST(Nlri, WithdrawalsCarriedWithoutAttributes) {
  Fixture f(3);
  const auto recs = pack_updates(f.ds, 50, 0, 0, net::PathPool::kEmptyPathId,
                                 0, {}, f.prefixes);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].announced.empty());
  EXPECT_EQ(recs[0].withdrawn, f.prefixes);
  EXPECT_EQ(recs[0].path, net::PathPool::kEmptyPathId);
}

TEST(Nlri, MixedWithdrawAndAnnounce) {
  Fixture f(10);
  const std::vector<PrefixId> wd(f.prefixes.begin(), f.prefixes.begin() + 4);
  const std::vector<PrefixId> ann(f.prefixes.begin() + 4, f.prefixes.end());
  const auto recs = pack_updates(f.ds, 50, 0, 0, f.path, 0, ann, wd);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].withdrawn, wd);
  EXPECT_EQ(recs[0].announced, ann);
}

TEST(Nlri, EmptyInputYieldsNothing) {
  Fixture f(0);
  EXPECT_TRUE(pack_updates(f.ds, 0, 0, 0, f.path, 0, {}, {}).empty());
}

TEST(Nlri, TightBudgetForcesOnePrefixPerMessage) {
  Fixture f(4);
  PackingLimits limits;
  limits.max_message_bytes =
      limits.header_bytes + 4 +
      attribute_bytes(f.ds.paths.get(f.path), f.ds.communities.get(f.comms)) +
      5;  // room for one /24 NLRI only
  const auto recs =
      pack_updates(f.ds, 0, 0, 0, f.path, f.comms, f.prefixes, {}, limits);
  EXPECT_EQ(recs.size(), 4u);
  for (const auto& r : recs) EXPECT_EQ(r.announced.size(), 1u);
}

TEST(Nlri, MetadataPropagated) {
  Fixture f(2);
  const auto recs = pack_updates(f.ds, 123, 0, 9, f.path, f.comms,
                                 f.prefixes, {});
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].peer, 9u);
  EXPECT_EQ(recs[0].collector, 0);
}

}  // namespace
}  // namespace bgpatoms::bgp
