// The observability layer's own contract (src/obs): counters stay exact
// under TaskPool contention, spans nest and record inner-first, histogram
// bucket edges sit exactly on the powers of two, snapshots come out
// name-sorted, and a translation unit compiled with BGPATOMS_OBS_DISABLED
// registers nothing and never evaluates macro arguments. Runs under the
// tsan preset (`ctest -L tsan`) so the lock-free Timer/Counter paths are
// exercised with race detection on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "obs/obs.h"

static_assert(BGPATOMS_OBS_ENABLED == 1,
              "test_obs.cpp must build with obs enabled");

// From test_obs_disabled_tu.cpp (compiled with BGPATOMS_OBS_DISABLED).
int disabled_tu_exercise();

namespace bgpatoms::obs {
namespace {

TEST(Counter, ExactUnderTaskPoolContention) {
  // Many workers hammering one counter: the relaxed fetch_add must lose
  // nothing. 8 tasks per worker slot keeps every thread busy.
  Counter& c = registry().counter("obs_test.contention");
  c.reset();
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kAddsPerTask = 10000;
  core::TaskPool pool(8);
  pool.run(kTasks, [&c](std::size_t) {
    for (std::uint64_t i = 0; i < kAddsPerTask; ++i) {
      c.add(1);
      OBS_COUNT("obs_test.contention_macro");
    }
  });
  EXPECT_EQ(c.value(), kTasks * kAddsPerTask);
  EXPECT_EQ(registry().counter("obs_test.contention_macro").value(),
            kTasks * kAddsPerTask);
  registry().counter("obs_test.contention_macro").reset();
}

TEST(Counter, AddNAndReset) {
  Counter& c = registry().counter("obs_test.add_n");
  c.add(41);
  c.add();
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  // Lookup of the same name returns the same object.
  EXPECT_EQ(&c, &registry().counter("obs_test.add_n"));
}

TEST(Timer, AggregatesCountTotalMinMax) {
  Timer& t = registry().timer("obs_test.timer");
  t.reset();
  EXPECT_EQ(t.min_ns(), 0u);  // empty timer reports min 0, not UINT64_MAX
  t.record(10);
  t.record(2);
  t.record(5);
  EXPECT_EQ(t.count(), 3u);
  EXPECT_EQ(t.total_ns(), 17u);
  EXPECT_EQ(t.min_ns(), 2u);
  EXPECT_EQ(t.max_ns(), 10u);
  t.reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.max_ns(), 0u);
}

TEST(Span, NestsAndRecordsInnerFirst) {
  Timer& outer_t = registry().timer("obs_test.span_outer");
  Timer& inner_t = registry().timer("obs_test.span_inner");
  outer_t.reset();
  inner_t.reset();

  EXPECT_EQ(Span::active_depth(), 0);
  {
    Span outer(outer_t);
    EXPECT_EQ(outer.depth(), 0);
    EXPECT_EQ(Span::active_depth(), 1);
    {
      Span inner(inner_t);
      EXPECT_EQ(inner.depth(), 1);
      EXPECT_EQ(Span::active_depth(), 2);
      EXPECT_EQ(inner_t.count(), 0u);  // records on destruction only
    }
    // Inner closed before outer: its timer is populated while the outer
    // one still is not.
    EXPECT_EQ(inner_t.count(), 1u);
    EXPECT_EQ(outer_t.count(), 0u);
    EXPECT_EQ(Span::active_depth(), 1);
  }
  EXPECT_EQ(outer_t.count(), 1u);
  EXPECT_EQ(Span::active_depth(), 0);
  // The outer scope encloses the inner one on the monotonic clock.
  EXPECT_GE(outer_t.total_ns(), inner_t.total_ns());
}

TEST(Span, MacroFormNestsViaScopes) {
  Timer& t = registry().timer("obs_test.span_macro");
  t.reset();
  {
    OBS_SPAN("obs_test.span_macro");
    EXPECT_EQ(Span::active_depth(), 1);
    {
      OBS_SPAN("obs_test.span_macro");
      EXPECT_EQ(Span::active_depth(), 2);
    }
  }
  EXPECT_EQ(t.count(), 2u);
}

TEST(Histogram, BucketEdgesSitOnPowersOfTwo) {
  // bucket 0 holds only the value 0; bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(7), 3);
  EXPECT_EQ(Histogram::bucket_index(8), 4);
  EXPECT_EQ(Histogram::bucket_index((std::uint64_t{1} << 63) - 1), 63);
  EXPECT_EQ(Histogram::bucket_index(std::uint64_t{1} << 63), 64);
  EXPECT_EQ(Histogram::bucket_index(UINT64_MAX), 64);

  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper(63), (std::uint64_t{1} << 63) - 1);
  EXPECT_EQ(Histogram::bucket_upper(64), UINT64_MAX);

  Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1024);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(11), 1u);  // 1024 = 2^10 -> [1024, 2047]
  EXPECT_EQ(h.total_count(), 5u);
}

TEST(Registry, SnapshotIsNameSortedAndSkipsEmptyBuckets) {
  registry().counter("obs_test.zzz").add(1);
  registry().counter("obs_test.aaa").add(2);
  Histogram& h = registry().histogram("obs_test.hist");
  h.reset();
  h.record(0);
  h.record(5);
  h.record(5);

  const MetricsSnapshot snap = registry().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  for (std::size_t i = 1; i < snap.timers.size(); ++i) {
    EXPECT_LT(snap.timers[i - 1].name, snap.timers[i].name);
  }
  for (const auto& hv : snap.histograms) {
    if (hv.name != "obs_test.hist") continue;
    // Only the two touched buckets appear: value 0 and [4,7].
    ASSERT_EQ(hv.buckets.size(), 2u);
    EXPECT_EQ(hv.buckets[0].upper_bound, 0u);
    EXPECT_EQ(hv.buckets[0].count, 1u);
    EXPECT_EQ(hv.buckets[1].upper_bound, 7u);
    EXPECT_EQ(hv.buckets[1].count, 2u);
    EXPECT_EQ(hv.count, 3u);
  }
}

TEST(Registry, ResetValuesKeepsReferencesValid) {
  Counter& c = registry().counter("obs_test.reset_ref");
  Timer& t = registry().timer("obs_test.reset_ref");
  c.add(7);
  t.record(7);
  registry().reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(t.count(), 0u);
  // Same storage after the reset: adds through the old reference land in
  // the re-looked-up counter.
  c.add(1);
  EXPECT_EQ(registry().counter("obs_test.reset_ref").value(), 1u);
}

TEST(Memory, SamplerReportsResidentSetOnLinux) {
  const MemorySample m = sample_memory();
#ifdef __linux__
  EXPECT_GT(m.rss_bytes, 0u);
  EXPECT_GE(m.peak_rss_bytes, m.rss_bytes);
#else
  (void)m;  // zeros are the documented non-procfs behavior
#endif
}

TEST(DisabledMode, MacrosRegisterNothingAndNeverEvaluateArguments) {
  const std::size_t counters_before = registry().counter_count();
  // The disabled TU exercised every OBS_* macro; its ++evaluations
  // side effects must not have run.
  EXPECT_EQ(disabled_tu_exercise(), 0);
  EXPECT_EQ(registry().counter_count(), counters_before);
  const MetricsSnapshot snap = registry().snapshot();
  for (const auto& c : snap.counters) {
    EXPECT_EQ(c.name.rfind("disabled_tu.", 0), std::string::npos) << c.name;
  }
  for (const auto& t : snap.timers) {
    EXPECT_EQ(t.name.rfind("disabled_tu.", 0), std::string::npos) << t.name;
  }
  for (const auto& h : snap.histograms) {
    EXPECT_EQ(h.name.rfind("disabled_tu.", 0), std::string::npos) << h.name;
  }
}

TEST(PoolInstrumentation, CountsBatchesAndTasksDeterministically) {
  Counter& batches = registry().counter("pool.batches");
  Counter& tasks = registry().counter("pool.tasks");
  const std::uint64_t batches_before = batches.value();
  const std::uint64_t tasks_before = tasks.value();

  // Same work at two thread counts: identical counter deltas (the obs
  // determinism contract for counters).
  for (const int threads : {1, 8}) {
    core::TaskPool pool(threads);
    pool.run(37, [](std::size_t) {});
    pool.run(1, [](std::size_t) {});
    pool.run(0, [](std::size_t) {});  // empty batch: not counted
  }
  EXPECT_EQ(batches.value() - batches_before, 4u);
  EXPECT_EQ(tasks.value() - tasks_before, 2u * 38u);
}

}  // namespace
}  // namespace bgpatoms::obs
