// Compiled into test_obs with BGPATOMS_OBS_DISABLED forced on for THIS
// translation unit only: macro expansion is per-TU, so every OBS_* site
// below must compile to a no-op that registers nothing and never
// evaluates its arguments. test_obs.cpp (built with obs enabled) calls
// disabled_tu_exercise() and then asserts the registry holds no
// "disabled_tu." metric and that the side-effect counter stayed zero.
#define BGPATOMS_OBS_DISABLED 1
#include "obs/obs.h"

static_assert(BGPATOMS_OBS_ENABLED == 0,
              "per-TU disable must flip the feature macro");

int disabled_tu_exercise() {
  int evaluations = 0;
  OBS_COUNT("disabled_tu.count");
  OBS_COUNT_N("disabled_tu.count_n", ++evaluations);
  OBS_SPAN("disabled_tu.span");
  OBS_TIME_NS("disabled_tu.time", ++evaluations);
  OBS_HISTOGRAM("disabled_tu.histogram", ++evaluations);
  // Arguments live in an unevaluated context: none of the ++evaluations
  // above may have run.
  return evaluations;
}
