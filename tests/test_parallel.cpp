// Tests for the deterministic task pool and seed derivation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/parallel.h"

namespace bgpatoms::core {
namespace {

TEST(ResolveThreads, ExplicitRequestWins) {
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(1), 1);
}

TEST(ResolveThreads, EnvOverrideWhenUnrequested) {
  ::setenv("BGPATOMS_THREADS", "5", 1);
  EXPECT_EQ(resolve_threads(0), 5);
  EXPECT_EQ(resolve_threads(2), 2);  // explicit still wins
  ::setenv("BGPATOMS_THREADS", "0", 1);
  EXPECT_GE(resolve_threads(0), 1);  // invalid env falls through
  ::unsetenv("BGPATOMS_THREADS");
  EXPECT_GE(resolve_threads(0), 1);  // hardware fallback, always >= 1
}

TEST(DeriveSeed, DeterministicAndSeparated) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 1; base <= 4; ++base)
    for (std::uint64_t i = 0; i < 64; ++i) seen.insert(derive_seed(base, i));
  // Adjacent bases/indices must not collide (SplitMix64 mixing).
  EXPECT_EQ(seen.size(), 4u * 64u);
  EXPECT_NE(derive_seed(1, 1), derive_seed(2, 0));
}

TEST(TaskPool, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    TaskPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.run(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(TaskPool, ReusableAcrossBatches) {
  TaskPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> sum{0};
    pool.run(round, [&](std::size_t i) { sum += static_cast<int>(i) + 1; });
    EXPECT_EQ(sum.load(), round * (round + 1) / 2);
  }
}

TEST(TaskPool, FirstExceptionPropagates) {
  TaskPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.run(100,
                        [&](std::size_t i) {
                          ran.fetch_add(1);
                          if (i == 17) throw std::runtime_error("task 17");
                        }),
               std::runtime_error);
  EXPECT_GE(ran.load(), 1);
  // The pool survives a throwing batch.
  std::atomic<int> ok{0};
  pool.run(8, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ParallelFor, CoversRangeAtAnyWidth) {
  for (int threads : {1, 3}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(hits.size(), threads,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, ZeroAndOneElementBatches) {
  parallel_for(0, 4, [](std::size_t) { FAIL() << "no tasks expected"; });
  int hit = 0;
  parallel_for(1, 4, [&](std::size_t i) { hit += static_cast<int>(i) + 1; });
  EXPECT_EQ(hit, 1);
}

}  // namespace
}  // namespace bgpatoms::core
