// Tests for the policy assigner: units must exactly partition each AS's
// prefixes and carry era-appropriate mechanisms.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "routing/policy.h"

namespace bgpatoms::routing {
namespace {

topo::Topology make_topo(double year = 2012.0, double scale = 0.02,
                         std::uint64_t seed = 3) {
  return topo::generate_topology(topo::era_params_v4(year, scale), seed);
}

TEST(Policy, UnitsPartitionEveryAsPrefixSet) {
  const auto topo = make_topo();
  const PolicySet ps = assign_policies(topo, 3);

  ASSERT_EQ(ps.units_by_origin.size(), topo.graph.size());
  for (topo::NodeId v = 0; v < topo.graph.size(); ++v) {
    std::multiset<GlobalPrefixId> unit_prefixes;
    for (UnitId u : ps.units_by_origin[v]) {
      EXPECT_EQ(ps.units[u].origin, v);
      for (GlobalPrefixId p : ps.units[u].prefixes) unit_prefixes.insert(p);
    }
    // Expected: the node's own prefixes, plus any MOAS extras assigned to it.
    std::multiset<GlobalPrefixId> expected;
    std::unordered_map<net::Prefix, GlobalPrefixId, net::PrefixHash> ids;
    for (GlobalPrefixId i = 0; i < ps.all_prefixes.size(); ++i) {
      ids.emplace(ps.all_prefixes[i], i);
    }
    for (const auto& p : topo.prefixes[v]) expected.insert(ids.at(p));
    for (const auto& [node, prefix] : topo.moas_extra) {
      if (node == v) expected.insert(ids.at(prefix));
    }
    EXPECT_EQ(unit_prefixes, expected) << "node " << v;
  }
}

TEST(Policy, UnitIdsAreDense) {
  const auto topo = make_topo();
  const PolicySet ps = assign_policies(topo, 3);
  for (UnitId u = 0; u < ps.units.size(); ++u) {
    EXPECT_EQ(ps.units[u].id, u);
  }
}

TEST(Policy, GlobalPrefixTableMatchesTopology) {
  const auto topo = make_topo();
  const PolicySet ps = assign_policies(topo, 3);
  std::size_t expected = 0;
  for (const auto& list : topo.prefixes) expected += list.size();
  EXPECT_EQ(ps.all_prefixes.size(), expected);
}

TEST(Policy, DeterministicForSeed) {
  const auto topo = make_topo();
  const PolicySet a = assign_policies(topo, 77);
  const PolicySet b = assign_policies(topo, 77);
  ASSERT_EQ(a.units.size(), b.units.size());
  for (std::size_t i = 0; i < a.units.size(); ++i) {
    EXPECT_EQ(a.units[i].prefixes, b.units[i].prefixes);
    EXPECT_TRUE(a.units[i].policy == b.units[i].policy);
  }
}

TEST(Policy, MoasUnitsExist) {
  const auto topo = make_topo(2012.0, 0.05);
  ASSERT_FALSE(topo.moas_extra.empty());
  const PolicySet ps = assign_policies(topo, 3);
  // Each MOAS extra becomes a unit at the second origin.
  std::size_t moas_units = 0;
  for (const auto& [node, prefix] : topo.moas_extra) {
    for (UnitId u : ps.units_by_origin[node]) {
      const auto& unit = ps.units[u];
      if (unit.prefixes.size() == 1 &&
          ps.all_prefixes[unit.prefixes[0]] == prefix) {
        ++moas_units;
        break;
      }
    }
  }
  EXPECT_EQ(moas_units, topo.moas_extra.size());
}

TEST(Policy, NonBulkUnitsCarryMechanisms) {
  const auto topo = make_topo(2024.0, 0.02);
  const PolicySet ps = assign_policies(topo, 3);
  std::size_t multi_unit_ases = 0, distinguished = 0;
  for (topo::NodeId v = 0; v < topo.graph.size(); ++v) {
    const auto& list = ps.units_by_origin[v];
    if (list.size() < 2) continue;
    ++multi_unit_ases;
    for (UnitId u : list) {
      const auto& pol = ps.units[u].policy;
      if (!(pol == UnitPolicy{})) {
        ++distinguished;
        break;
      }
    }
  }
  ASSERT_GT(multi_unit_ases, 0u);
  // Nearly every splitting AS distinguishes at least one unit.
  EXPECT_GT(distinguished, multi_unit_ases * 9 / 10);
}

TEST(Policy, AnnounceAndPrependIndicesAreValid) {
  const auto topo = make_topo(2024.0, 0.02);
  const PolicySet ps = assign_policies(topo, 3);
  for (const auto& unit : ps.units) {
    const auto& nbs = topo.graph.node(unit.origin).neighbors;
    for (std::uint16_t i : unit.policy.announce_to) {
      EXPECT_LT(i, nbs.size());
    }
    for (std::uint16_t i : unit.policy.prepend_to) {
      EXPECT_LT(i, nbs.size());
    }
    for (const auto& rule : unit.policy.transit_rules) {
      EXPECT_LT(rule.at, topo.graph.size());
    }
  }
}

TEST(Policy, LocalUnitsUseNoExport) {
  const auto topo = make_topo(2024.0, 0.03);
  const PolicySet ps = assign_policies(topo, 3);
  std::size_t local = 0;
  for (const auto& unit : ps.units) {
    if (unit.policy.no_export) {
      ++local;
      EXPECT_EQ(unit.policy.announce_to.size(), 1u);
    }
  }
  EXPECT_GT(local, 0u) << "era 2024 has local_unit_prob > 0";
}

TEST(Policy, EraShiftsMechanismMix) {
  // 2024 eras must produce more transit-side rules than 2004 eras.
  const auto t2004 = make_topo(2004.0, 0.03);
  const auto t2024 = make_topo(2024.0, 0.03);
  auto transit_share = [](const PolicySet& ps) {
    std::size_t with_rules = 0, total = 0;
    for (const auto& u : ps.units) {
      ++total;
      with_rules += !u.policy.transit_rules.empty();
    }
    return static_cast<double>(with_rules) / static_cast<double>(total);
  };
  EXPECT_GT(transit_share(assign_policies(t2024, 3)),
            transit_share(assign_policies(t2004, 3)));
}

}  // namespace
}  // namespace bgpatoms::routing
