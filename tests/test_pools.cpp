// Tests for the prefix / community-set interning pools.
#include <gtest/gtest.h>

#include "bgp/pools.h"

namespace bgpatoms::bgp {
namespace {

TEST(PrefixPool, InternAssignsSequentialIds) {
  PrefixPool pool;
  const auto a = pool.intern(*net::Prefix::parse("10.0.0.0/8"));
  const auto b = pool.intern(*net::Prefix::parse("10.1.0.0/16"));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(pool.intern(*net::Prefix::parse("10.0.0.0/8")), a);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.get(b), *net::Prefix::parse("10.1.0.0/16"));
}

TEST(PrefixPool, FindDoesNotIntern) {
  PrefixPool pool;
  EXPECT_EQ(pool.find(*net::Prefix::parse("10.0.0.0/8")), UINT32_MAX);
  EXPECT_EQ(pool.size(), 0u);
  pool.intern(*net::Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(pool.find(*net::Prefix::parse("10.0.0.0/8")), 0u);
}

TEST(Community, PackingRoundTrip) {
  const Community c = make_community(3257, 2990);
  EXPECT_EQ(community_asn(c), 3257);
  EXPECT_EQ(community_value(c), 2990);
}

TEST(CommunitySetPool, EmptySetIsIdZero) {
  CommunitySetPool pool;
  EXPECT_EQ(pool.intern({}), 0u);
  EXPECT_TRUE(pool.get(0).empty());
  EXPECT_EQ(pool.size(), 1u);
}

TEST(CommunitySetPool, CanonicalizesOrderAndDuplicates) {
  CommunitySetPool pool;
  const auto a = pool.intern({make_community(1, 2), make_community(3, 4)});
  const auto b = pool.intern({make_community(3, 4), make_community(1, 2)});
  const auto c = pool.intern({make_community(3, 4), make_community(1, 2),
                              make_community(1, 2)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(pool.get(a).size(), 2u);
}

TEST(CommunitySetPool, DistinctSetsGetDistinctIds) {
  CommunitySetPool pool;
  const auto a = pool.intern({make_community(1, 2)});
  const auto b = pool.intern({make_community(1, 3)});
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 3u);  // empty + two
}

}  // namespace
}  // namespace bgpatoms::bgp
