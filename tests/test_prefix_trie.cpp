// Unit + property tests for the binary prefix trie.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "net/prefix_trie.h"
#include "net/rng.h"

namespace bgpatoms::net {
namespace {

TEST(PrefixTrie, InsertAndFind) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(*Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_TRUE(trie.insert(*Prefix::parse("10.1.0.0/16"), 2));
  EXPECT_FALSE(trie.insert(*Prefix::parse("10.0.0.0/8"), 3));  // overwrite
  EXPECT_EQ(trie.size(), 2u);
  ASSERT_NE(trie.find(*Prefix::parse("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.0.0.0/8")), 3);
  EXPECT_EQ(trie.find(*Prefix::parse("10.0.0.0/9")), nullptr);
}

TEST(PrefixTrie, EmptyTrie) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.find(*Prefix::parse("10.0.0.0/8")), nullptr);
  EXPECT_FALSE(trie.longest_match(*Prefix::parse("10.0.0.0/8")).has_value());
}

TEST(PrefixTrie, RootValue) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("0.0.0.0/0"), 42);
  const auto m = trie.longest_match(*Prefix::parse("203.0.113.0/24"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->second, 42);
  EXPECT_EQ(m->first.length(), 0);
}

TEST(PrefixTrie, LongestMatchPrefersDeepest) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 24);

  EXPECT_EQ(trie.longest_match(*Prefix::parse("10.1.2.0/24"))->second, 24);
  EXPECT_EQ(trie.longest_match(*Prefix::parse("10.1.2.0/25"))->second, 24);
  EXPECT_EQ(trie.longest_match(*Prefix::parse("10.1.3.0/24"))->second, 16);
  EXPECT_EQ(trie.longest_match(*Prefix::parse("10.2.0.0/16"))->second, 8);
  EXPECT_FALSE(trie.longest_match(*Prefix::parse("11.0.0.0/8")).has_value());
}

TEST(PrefixTrie, StrictSupernet) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_TRUE(trie.has_strict_supernet(*Prefix::parse("10.1.0.0/16")));
  EXPECT_FALSE(trie.has_strict_supernet(*Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(trie.has_strict_supernet(*Prefix::parse("11.0.0.0/16")));
}

TEST(PrefixTrie, ForEachCovered) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 2);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 3);
  trie.insert(*Prefix::parse("11.0.0.0/8"), 4);

  std::vector<int> seen;
  trie.for_each_covered(*Prefix::parse("10.1.0.0/16"),
                        [&](const Prefix&, int v) { seen.push_back(v); });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{2, 3}));
}

TEST(PrefixTrie, ForEachReconstructsPrefixes) {
  PrefixTrie<int> trie;
  const std::vector<const char*> inputs = {"10.0.0.0/8", "10.128.0.0/9",
                                           "192.0.2.0/24", "0.0.0.0/0"};
  for (const char* text : inputs) trie.insert(*Prefix::parse(text), 0);
  std::vector<std::string> seen;
  trie.for_each([&](const Prefix& p, int) { seen.push_back(p.to_string()); });
  std::sort(seen.begin(), seen.end());
  std::vector<std::string> expected(inputs.begin(), inputs.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(seen, expected);
}

TEST(PrefixTrie, IPv6Depth) {
  PrefixTrie<int> trie(Family::kIPv6);
  trie.insert(*Prefix::parse("2001:db8::/32"), 32);
  trie.insert(*Prefix::parse("2001:db8:0:1::/64"), 64);
  trie.insert(*Prefix::parse("2001:db8:0:1::8000:0:0/68"), 68);
  EXPECT_EQ(trie.longest_match(*Prefix::parse("2001:db8:0:1::8000:0:1/128"))
                ->second,
            68);
  EXPECT_EQ(trie.longest_match(*Prefix::parse("2001:db8:0:2::/64"))->second,
            32);
}

TEST(PrefixTrie, LongestMatchByAddress) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  const auto m = trie.longest_match(*IpAddress::parse("10.1.2.3"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->second, 16);
  EXPECT_FALSE(trie.longest_match(*IpAddress::parse("11.0.0.1")).has_value());
}

TEST(DualPrefixTrie, RoutesByFamily) {
  DualPrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  trie.insert(*Prefix::parse("10.0.0.0/8"), 4);
  trie.insert(*Prefix::parse("2001:db8::/32"), 6);
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_FALSE(trie.empty());

  ASSERT_NE(trie.find(*Prefix::parse("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.0.0.0/8")), 4);
  ASSERT_NE(trie.find(*Prefix::parse("2001:db8::/32")), nullptr);
  EXPECT_EQ(*trie.find(*Prefix::parse("2001:db8::/32")), 6);

  EXPECT_EQ(trie.longest_match(*IpAddress::parse("10.9.9.9"))->second, 4);
  EXPECT_EQ(trie.longest_match(*IpAddress::parse("2001:db8::1"))->second, 6);
  EXPECT_FALSE(trie.longest_match(*IpAddress::parse("192.0.2.1")).has_value());
  EXPECT_FALSE(trie.longest_match(*IpAddress::parse("2001:db9::1")).has_value());
}

TEST(DualPrefixTrie, HostRoutesAndDefaultRoutes) {
  DualPrefixTrie<int> trie;
  trie.insert(*Prefix::parse("0.0.0.0/0"), 1);
  trie.insert(*Prefix::parse("192.0.2.7/32"), 2);
  trie.insert(*Prefix::parse("::/0"), 3);
  trie.insert(*Prefix::parse("2001:db8::7/128"), 4);

  // Host route wins over the default; everything else falls to /0.
  EXPECT_EQ(trie.longest_match(*IpAddress::parse("192.0.2.7"))->second, 2);
  EXPECT_EQ(trie.longest_match(*IpAddress::parse("192.0.2.8"))->second, 1);
  EXPECT_EQ(trie.longest_match(*IpAddress::parse("2001:db8::7"))->second, 4);
  EXPECT_EQ(trie.longest_match(*IpAddress::parse("2001:db8::8"))->second, 3);
}

TEST(DualPrefixTrie, ForEachVisitsV4ThenV6) {
  DualPrefixTrie<int> trie;
  trie.insert(*Prefix::parse("2001:db8::/32"), 6);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 4);
  std::vector<int> seen;
  trie.for_each([&](const Prefix&, int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{4, 6}));
}

// Property sweep: trie lookups agree with a brute-force reference.
class PrefixTrieProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixTrieProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  PrefixTrie<std::uint32_t> trie;
  std::map<Prefix, std::uint32_t> reference;

  for (int i = 0; i < 300; ++i) {
    const int len = 4 + static_cast<int>(rng.next_below(25));
    const Prefix p(IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64())),
                   len);
    const auto value = static_cast<std::uint32_t>(i);
    trie.insert(p, value);
    reference[p] = value;
  }
  EXPECT_EQ(trie.size(), reference.size());

  for (int q = 0; q < 300; ++q) {
    const int len = static_cast<int>(rng.next_below(33));
    const Prefix query(
        IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64())), len);

    // Exact find.
    const auto it = reference.find(query);
    const auto* found = trie.find(query);
    if (it == reference.end()) {
      EXPECT_EQ(found, nullptr);
    } else {
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(*found, it->second);
    }

    // Longest match vs brute force.
    std::optional<std::pair<Prefix, std::uint32_t>> best;
    for (const auto& [p, v] : reference) {
      if (p.contains(query) &&
          (!best || p.length() > best->first.length())) {
        best = {p, v};
      }
    }
    const auto lm = trie.longest_match(query);
    EXPECT_EQ(lm.has_value(), best.has_value());
    if (lm && best) {
      EXPECT_EQ(lm->first, best->first);
      EXPECT_EQ(lm->second, best->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixTrieProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 1337));

}  // namespace
}  // namespace bgpatoms::net
