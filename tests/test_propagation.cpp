// Gao-Rexford propagation-engine tests on hand-built graphs.
//
// Node/ASN convention below: add_node(asn, ...) and we keep asn == 10*(id+1)
// so paths are easy to read in failure output.
#include <gtest/gtest.h>

#include "routing/propagation.h"

namespace bgpatoms::routing {
namespace {

using topo::AsGraph;
using topo::NodeId;
using topo::Rel;
using topo::Tier;

struct GraphBuilder {
  AsGraph g;
  NodeId add(net::Asn asn, Tier tier = Tier::kEdge, std::uint16_t region = 0) {
    return g.add_node(asn, tier, region, asn);
  }
  // b provides transit to a.
  void provider(NodeId a, NodeId b) { g.add_edge(a, b, Rel::kProvider); }
  void peer(NodeId a, NodeId b) { g.add_edge(a, b, Rel::kPeer); }
  void sibling(NodeId a, NodeId b) { g.add_edge(a, b, Rel::kSibling); }
};

std::vector<net::Asn> path_at(const Propagator& prop, const RouteTable& t,
                              NodeId node) {
  return prop.extract_path(t, node).flat();
}

TEST(Propagation, LinearChainCustomerRoutes) {
  GraphBuilder b;
  const NodeId o = b.add(10), p = b.add(20), t = b.add(30, Tier::kTier1);
  b.provider(o, p);
  b.provider(p, t);

  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, nullptr, table);

  EXPECT_EQ(table.cls[o], RouteClass::kSelf);
  EXPECT_EQ(table.cls[p], RouteClass::kCustomer);
  EXPECT_EQ(table.cls[t], RouteClass::kCustomer);
  EXPECT_EQ(path_at(prop, table, p), (std::vector<net::Asn>{10}));
  EXPECT_EQ(path_at(prop, table, t), (std::vector<net::Asn>{20, 10}));
  EXPECT_TRUE(prop.extract_path(table, o).empty());
}

TEST(Propagation, ProviderRoutesDescend) {
  //   t
  //  / \                    o announces; v learns a provider route via t.
  // o   v
  GraphBuilder b;
  const NodeId o = b.add(10), t = b.add(20, Tier::kTransit), v = b.add(30);
  b.provider(o, t);
  b.provider(v, t);

  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, nullptr, table);
  EXPECT_EQ(table.cls[v], RouteClass::kProvider);
  EXPECT_EQ(path_at(prop, table, v), (std::vector<net::Asn>{20, 10}));
}

TEST(Propagation, PeerRoutesSingleHopValleyFree) {
  // o - p1 (provider), p1 == p2 peers, p2 == p3 peers.
  // p2 hears o via the peer edge; p3 must NOT (no peer-peer re-export).
  GraphBuilder b;
  const NodeId o = b.add(10), p1 = b.add(20, Tier::kTransit),
               p2 = b.add(30, Tier::kTransit), p3 = b.add(40, Tier::kTransit);
  b.provider(o, p1);
  b.peer(p1, p2);
  b.peer(p2, p3);

  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, nullptr, table);
  EXPECT_EQ(table.cls[p2], RouteClass::kPeer);
  EXPECT_EQ(path_at(prop, table, p2), (std::vector<net::Asn>{20, 10}));
  EXPECT_FALSE(table.reachable(p3)) << "peer route leaked across two peers";
}

TEST(Propagation, PeerRouteExportsToCustomers) {
  GraphBuilder b;
  const NodeId o = b.add(10), p1 = b.add(20, Tier::kTransit),
               p2 = b.add(30, Tier::kTransit), c = b.add(40);
  b.provider(o, p1);
  b.peer(p1, p2);
  b.provider(c, p2);  // c is p2's customer

  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, nullptr, table);
  EXPECT_EQ(table.cls[c], RouteClass::kProvider);
  EXPECT_EQ(path_at(prop, table, c), (std::vector<net::Asn>{30, 20, 10}));
}

TEST(Propagation, CustomerRoutePreferredOverShorterPeerRoute) {
  // v can reach o via a customer chain (longer) or directly via a peer
  // edge (shorter). Gao-Rexford prefers the customer route.
  GraphBuilder b;
  const NodeId o = b.add(10), m = b.add(20), v = b.add(30, Tier::kTransit);
  b.provider(o, m);
  b.provider(m, v);  // v learns o from customer m: path (20, 10)
  b.peer(v, o);      // and from peer o directly: path (10)

  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, nullptr, table);
  EXPECT_EQ(table.cls[v], RouteClass::kCustomer);
  EXPECT_EQ(path_at(prop, table, v), (std::vector<net::Asn>{20, 10}));
}

TEST(Propagation, ShortestPathWithinClass) {
  // Two customer routes: via m1+m2 (3 hops) or via m3 (2 hops).
  GraphBuilder b;
  const NodeId o = b.add(10), m1 = b.add(20), m2 = b.add(30), m3 = b.add(40),
               v = b.add(50, Tier::kTier1);
  b.provider(o, m1);
  b.provider(m1, m2);
  b.provider(m2, v);
  b.provider(o, m3);
  b.provider(m3, v);

  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, nullptr, table);
  EXPECT_EQ(path_at(prop, table, v), (std::vector<net::Asn>{40, 10}));
}

TEST(Propagation, TieBreakByLowerNeighborAsn) {
  // Equal-length customer routes via 20 and via 30: lower ASN wins.
  GraphBuilder b;
  const NodeId o = b.add(10), m1 = b.add(20), m2 = b.add(30), v = b.add(40);
  b.provider(o, m1);
  b.provider(o, m2);
  b.provider(m1, v);
  b.provider(m2, v);

  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, nullptr, table);
  EXPECT_EQ(path_at(prop, table, v), (std::vector<net::Asn>{20, 10}));
}

TEST(Propagation, OriginPrependingLengthensAndChangesSelection) {
  GraphBuilder b;
  const NodeId o = b.add(10), m1 = b.add(20), m2 = b.add(30), v = b.add(40);
  b.provider(o, m1);  // neighbor index 0 of o
  b.provider(o, m2);  // neighbor index 1 of o
  b.provider(m1, v);
  b.provider(m2, v);

  // Prepend 2x toward m1: v should now prefer the m2 route.
  UnitPolicy pol;
  pol.prepend_to = {0};
  pol.prepend_count = 2;

  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, &pol, table);
  EXPECT_EQ(path_at(prop, table, v), (std::vector<net::Asn>{30, 10}));
  // And the prepended copies are visible on the m1 branch itself.
  EXPECT_EQ(path_at(prop, table, m1), (std::vector<net::Asn>{10, 10, 10}));
  EXPECT_EQ(table.dist[m1], 3u);
}

TEST(Propagation, SelectiveAnnounceBlocksProvider) {
  GraphBuilder b;
  const NodeId o = b.add(10), m1 = b.add(20), m2 = b.add(30), v = b.add(40);
  b.provider(o, m1);  // index 0
  b.provider(o, m2);  // index 1
  b.provider(m1, v);
  b.provider(m2, v);

  UnitPolicy pol;
  pol.announce_to = {1};  // only m2 hears the unit directly

  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, &pol, table);
  EXPECT_EQ(path_at(prop, table, v), (std::vector<net::Asn>{30, 10}));
  // m1 no longer hears o directly, but it still buys transit from v, so it
  // learns the route back down as a provider route — exactly why selective
  // announcement splits atoms at distance TWO, not by visibility.
  EXPECT_EQ(table.cls[m1], RouteClass::kProvider);
  EXPECT_EQ(path_at(prop, table, m1), (std::vector<net::Asn>{40, 30, 10}));
}

TEST(Propagation, NoExportStopsAtFirstAs) {
  GraphBuilder b;
  const NodeId o = b.add(10), p = b.add(20), t = b.add(30, Tier::kTier1);
  b.provider(o, p);
  b.provider(p, t);

  UnitPolicy pol;
  pol.no_export = true;

  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, &pol, table);
  EXPECT_TRUE(table.reachable(p));
  EXPECT_FALSE(table.reachable(t));
}

TEST(Propagation, TransitBlockNeighborForcesAlternate) {
  //       v
  //      / \                o->P; P exports to x and y; rule blocks P->x.
  //     x   y
  //      \ /
  //       P
  //       |
  //       o
  GraphBuilder b;
  const NodeId o = b.add(10), p = b.add(20, Tier::kTransit), x = b.add(30),
               y = b.add(40), v = b.add(50, Tier::kTier1);
  b.provider(o, p);
  b.provider(p, x);
  b.provider(p, y);
  b.provider(x, v);
  b.provider(y, v);

  Propagator prop(b.g);
  RouteTable base;
  prop.compute(o, nullptr, base);
  EXPECT_EQ(path_at(prop, base, v), (std::vector<net::Asn>{30, 20, 10}));

  UnitPolicy pol;
  TransitRule rule;
  rule.kind = TransitRule::Kind::kBlockNeighbor;
  rule.at = p;
  rule.neighbor = x;
  pol.transit_rules.push_back(rule);

  RouteTable table;
  prop.compute(o, &pol, table);
  EXPECT_EQ(path_at(prop, table, v), (std::vector<net::Asn>{40, 20, 10}))
      << "v must re-route around the blocked branch (split at distance 3)";
  // x itself recovers the route from its provider v (provider route).
  EXPECT_EQ(table.cls[x], RouteClass::kProvider);
  EXPECT_EQ(path_at(prop, table, x),
            (std::vector<net::Asn>{50, 40, 20, 10}));
}

TEST(Propagation, TransitRegionBlockAndPrepend) {
  GraphBuilder b;
  const NodeId o = b.add(10), p = b.add(20, Tier::kTransit);
  const NodeId r1 = b.g.add_node(30, Tier::kEdge, /*region=*/1, 30);
  const NodeId r2 = b.g.add_node(40, Tier::kEdge, /*region=*/2, 40);
  b.provider(o, p);
  b.provider(r1, p);
  b.provider(r2, p);

  UnitPolicy block;
  block.transit_rules.push_back(
      {TransitRule::Kind::kBlockRegionExport, p, topo::kNoNode, 1, 0});

  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, &block, table);
  EXPECT_FALSE(table.reachable(r1)) << "region 1 blocked";
  EXPECT_TRUE(table.reachable(r2));

  UnitPolicy prepend;
  prepend.transit_rules.push_back(
      {TransitRule::Kind::kPrependRegionExport, p, topo::kNoNode, 2, 2});
  prop.compute(o, &prepend, table);
  EXPECT_EQ(path_at(prop, table, r1), (std::vector<net::Asn>{20, 10}));
  EXPECT_EQ(path_at(prop, table, r2), (std::vector<net::Asn>{20, 20, 20, 10}));
}

TEST(Propagation, SiblingsAreTransparent) {
  // Sibling chain: o -S- s1 -S- s2(head) -> provider t; a VP behind t must
  // see the whole chain in the path (the DoD pattern).
  GraphBuilder b;
  const NodeId o = b.add(10), s1 = b.add(20), s2 = b.add(30),
               t = b.add(40, Tier::kTransit), v = b.add(50, Tier::kTier1);
  b.sibling(o, s1);
  b.sibling(s1, s2);
  b.provider(s2, t);
  b.provider(t, v);

  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, nullptr, table);
  EXPECT_EQ(path_at(prop, table, v),
            (std::vector<net::Asn>{40, 30, 20, 10}));
}

TEST(Propagation, UnreachableWithoutEdges) {
  GraphBuilder b;
  const NodeId o = b.add(10);
  const NodeId island = b.add(20);
  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, nullptr, table);
  EXPECT_FALSE(table.reachable(island));
  EXPECT_TRUE(prop.extract_path(table, island).empty());
}

TEST(Propagation, PeerOnlyAnnouncementVisibilityScope) {
  // Content AS announces only to its peer: the peer and the peer's
  // customers see it; the content AS's provider does not.
  GraphBuilder b;
  const NodeId o = b.add(10, Tier::kContent), prov = b.add(20, Tier::kTransit),
               pr = b.add(30, Tier::kTransit), cust = b.add(40);
  b.provider(o, prov);  // index 0
  b.peer(o, pr);        // index 1
  b.provider(cust, pr);

  UnitPolicy pol;
  pol.announce_to = {1};

  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, &pol, table);
  EXPECT_FALSE(table.reachable(prov));
  EXPECT_TRUE(table.reachable(pr));
  EXPECT_TRUE(table.reachable(cust));
  EXPECT_EQ(path_at(prop, table, cust), (std::vector<net::Asn>{30, 10}));
}

TEST(Propagation, DistMatchesExtractedPathLength) {
  GraphBuilder b;
  const NodeId o = b.add(10), p = b.add(20), t = b.add(30, Tier::kTier1),
               v = b.add(40);
  b.provider(o, p);
  b.provider(p, t);
  b.provider(v, t);

  UnitPolicy pol;
  pol.prepend_to = {0};
  pol.prepend_count = 1;

  Propagator prop(b.g);
  RouteTable table;
  prop.compute(o, &pol, table);
  for (NodeId n : {p, t, v}) {
    EXPECT_EQ(table.dist[n], prop.extract_path(table, n).flat().size()) << n;
  }
}

}  // namespace
}  // namespace bgpatoms::routing
