// Property-based tests: invariants swept over random seeds with
// parameterized gtest suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "bgp/archive.h"
#include "core/formation.h"
#include "core/longitudinal.h"
#include "core/stability.h"
#include "net/rng.h"

namespace bgpatoms::core {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

/// Builds a random small sanitizable dataset directly via the simulator.
routing::Simulator make_sim(std::uint64_t seed, double year = 2014.0) {
  routing::SimOptions opt;
  opt.seed = seed;
  return routing::Simulator(
      topo::generate_topology(topo::era_params_v4(year, 0.006), seed), opt);
}

TEST_P(SeedSweep, AtomsArePartition) {
  auto sim = make_sim(GetParam());
  sim.capture();
  const auto snap = sanitize(sim.dataset(), 0);
  const auto atoms = compute_atoms(snap);
  std::unordered_set<bgp::PrefixId> seen;
  for (const auto& atom : atoms.atoms) {
    for (bgp::PrefixId p : atom.prefixes) {
      EXPECT_TRUE(seen.insert(p).second) << "prefix in two atoms";
    }
  }
  EXPECT_EQ(seen.size(), snap.prefixes.size());
}

TEST_P(SeedSweep, RemovingAVantagePointOnlyCoarsensAtoms) {
  // Atoms computed over FEWER vantage points are a coarsening: every atom
  // of the full view is contained in exactly one atom of the reduced view.
  auto sim = make_sim(GetParam());
  sim.capture();
  auto& ds = sim.dataset();
  const auto full_snap = sanitize(ds, 0);
  const auto full = compute_atoms(full_snap);

  // Drop the last peer feed and recompute. Pool ids stay aligned because
  // the copy (archive round-trip) only removes records, never re-interns.
  bgp::Dataset copy = bgp::read_archive(bgp::write_archive(ds));
  copy.snapshots[0].peers.pop_back();

  SanitizeConfig config;  // same defaults, fewer peers
  const auto red_snap = sanitize(copy, 0, config);
  const auto reduced = compute_atoms(red_snap);

  std::unordered_map<bgp::PrefixId, std::uint32_t> reduced_of;
  for (std::uint32_t i = 0; i < reduced.atoms.size(); ++i) {
    for (bgp::PrefixId p : reduced.atoms[i].prefixes) reduced_of.emplace(p, i);
  }
  for (const auto& atom : full.atoms) {
    std::int64_t target = -1;
    for (bgp::PrefixId p : atom.prefixes) {
      const auto it = reduced_of.find(p);
      if (it == reduced_of.end()) continue;  // filtered by visibility
      if (target < 0) {
        target = it->second;
      } else {
        EXPECT_EQ(static_cast<std::uint32_t>(target), it->second)
            << "an atom of the full view straddles two coarser atoms";
      }
    }
  }
}

TEST_P(SeedSweep, StabilityMetricBounds) {
  routing::SimOptions opt;
  opt.seed = GetParam();
  opt.weekly_churn = true;
  routing::Simulator sim(
      topo::generate_topology(topo::era_params_v4(2018.0, 0.006), GetParam()),
      opt);
  sim.capture();
  sim.advance_to(routing::kDay);
  sim.capture();
  const auto s1 = sanitize(sim.dataset(), 0);
  const auto s2 = sanitize(sim.dataset(), 1);
  const auto a1 = compute_atoms(s1);
  const auto a2 = compute_atoms(s2);
  const auto r = stability(a1, a2);
  EXPECT_GE(r.cam, 0.0);
  EXPECT_LE(r.cam, 1.0);
  EXPECT_GE(r.mpm, 0.0);
  EXPECT_LE(r.mpm, 1.0);
  // Self-comparison is perfect.
  const auto self = stability(a1, a1);
  EXPECT_DOUBLE_EQ(self.cam, 1.0);
  EXPECT_DOUBLE_EQ(self.mpm, 1.0);
}

TEST_P(SeedSweep, FormationDistancesWellFormed) {
  auto sim = make_sim(GetParam());
  sim.capture();
  const auto snap = sanitize(sim.dataset(), 0);
  const auto atoms = compute_atoms(snap);
  const auto f = formation_distance(atoms);
  ASSERT_EQ(f.distance.size(), atoms.atoms.size());
  std::size_t histogram_total = 0;
  for (int d = 1; d <= FormationResult::kMaxDistance; ++d) {
    histogram_total += f.atoms_at_distance[d];
  }
  EXPECT_EQ(histogram_total, atoms.atoms.size());
  for (std::size_t i = 0; i < f.distance.size(); ++i) {
    EXPECT_GE(f.distance[i], 1);
    // Distance-1 atoms carry a cause; others carry none.
    if (f.distance[i] == 1) {
      EXPECT_NE(f.cause[i], DistanceOneCause::kNotDistanceOne);
    } else {
      EXPECT_EQ(f.cause[i], DistanceOneCause::kNotDistanceOne);
    }
  }
  // Per-AS histograms each sum to the AS count.
  std::size_t first_total = 0, all_total = 0;
  for (int d = 1; d <= FormationResult::kMaxDistance; ++d) {
    first_total += f.first_split_at[d];
    all_total += f.all_split_at[d];
  }
  EXPECT_EQ(first_total, atoms.as_count());
  EXPECT_EQ(all_total, atoms.as_count());
}

TEST_P(SeedSweep, MethodIProducesNoMoreAtomsThanRaw) {
  // Stripping prepending before grouping can only merge atoms.
  auto sim = make_sim(GetParam());
  sim.capture();
  const auto snap = sanitize(sim.dataset(), 0);
  const auto raw = compute_atoms(snap);
  AtomOptions options;
  options.strip_prepends_before_grouping = true;
  const auto stripped = compute_atoms(snap, options);
  EXPECT_LE(stripped.atoms.size(), raw.atoms.size());
}

TEST_P(SeedSweep, ArchiveRoundTripPreservesEverything) {
  auto sim = make_sim(GetParam());
  sim.capture();
  sim.emit_updates(routing::kHour);
  const auto& ds = sim.dataset();
  const bgp::Dataset back = bgp::read_archive(bgp::write_archive(ds));
  ASSERT_EQ(back.snapshots.size(), ds.snapshots.size());
  EXPECT_EQ(bgp::Dataset::record_count(back.snapshots[0]),
            bgp::Dataset::record_count(ds.snapshots[0]));
  EXPECT_EQ(back.updates.size(), ds.updates.size());
  EXPECT_EQ(back.paths.size(), ds.paths.size());
  EXPECT_EQ(back.prefixes.size(), ds.prefixes.size());
}

TEST_P(SeedSweep, SplitPointSymmetryOnRandomPaths) {
  Rng rng(GetParam() * 77 + 1);
  for (int i = 0; i < 200; ++i) {
    std::vector<net::Asn> a, b;
    const int la = 1 + static_cast<int>(rng.next_below(6));
    const int lb = 1 + static_cast<int>(rng.next_below(6));
    for (int k = 0; k < la; ++k) a.push_back(1 + rng.next_below(4));
    for (int k = 0; k < lb; ++k) b.push_back(1 + rng.next_below(4));
    const auto pa = net::AsPath::sequence(a);
    const auto pb = net::AsPath::sequence(b);
    for (auto method : {PrependMethod::kRunAware,
                        PrependMethod::kStripAfterGrouping}) {
      EXPECT_EQ(split_point(pa, pb, method), split_point(pb, pa, method));
    }
    // Distance is at least 1 and bounded by unique hops + 1.
    const auto d = split_point(pa, pb, PrependMethod::kRunAware);
    if (d != INT32_MAX) {
      EXPECT_GE(d, 1);
      EXPECT_LE(d, std::max(pa.unique_hop_count(), pb.unique_hop_count()) + 1);
    } else {
      EXPECT_EQ(pa, pb);  // run-aware: only identical paths never split
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace bgpatoms::core
