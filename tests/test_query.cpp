// Query layer: AtomIndex longest-prefix-match resolution pinned against a
// linear-scan oracle (default route /0, host routes /32 and /128, IPv6,
// misses, aliased network addresses), batch-build identity vs
// compute_atoms(), the O(dirty rows) refresh path vs a full recompute,
// and Timeline history / partition equivalence across snapshots.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/atoms.h"
#include "core/incremental.h"
#include "query/atom_index.h"
#include "query/timeline.h"
#include "testutil.h"

namespace bgpatoms::query {
namespace {

using test::DatasetBuilder;

/// Lax sanitize with prefix filtering fully off, so /0 and host routes
/// survive into the snapshot.
core::SanitizeConfig open_config() {
  core::SanitizeConfig config = test::lax_config();
  config.filter_prefixes = false;
  config.max_prefix_length = 128;
  return config;
}

net::IpAddress addr(const char* text) {
  return *net::IpAddress::parse(text);
}

/// The linear-scan LPM oracle the index must agree with bit-for-bit.
std::optional<net::Prefix> oracle_match(const core::SanitizedSnapshot& snap,
                                        const net::IpAddress& a) {
  std::optional<net::Prefix> best;
  for (const auto id : snap.prefixes) {
    const auto& p = snap.prefix(id);
    if (p.contains(a) && (!best || p.length() > best->length())) best = p;
  }
  return best;
}

/// The index's partition as a canonical set-of-sets of PrefixIds.
std::vector<std::vector<bgp::PrefixId>> index_partition(const AtomIndex& idx) {
  std::map<std::uint32_t, std::vector<bgp::PrefixId>> by_atom;
  for (std::uint32_t row = 0;
       row < static_cast<std::uint32_t>(idx.prefix_count()); ++row) {
    const auto m = idx.lookup(idx.prefix_at(row));
    EXPECT_TRUE(m.has_value());
    EXPECT_EQ(m->prefix, idx.prefix_at(row));  // exact match resolves to self
    by_atom[m->atom].push_back(idx.prefix_id_at(row));
  }
  std::vector<std::vector<bgp::PrefixId>> out;
  for (auto& [atom, members] : by_atom) {
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<bgp::PrefixId>> batch_partition(
    const core::AtomSet& atoms) {
  std::vector<std::vector<bgp::PrefixId>> out;
  for (const auto& atom : atoms.atoms) out.push_back(atom.prefixes);
  std::sort(out.begin(), out.end());
  return out;
}

/// member-set -> the per-VP path strings, for cross-representation
/// comparison (ids may differ between pools; rendered paths cannot).
std::map<std::vector<bgp::PrefixId>, std::vector<std::string>> index_paths(
    const AtomIndex& idx) {
  std::map<std::vector<bgp::PrefixId>, std::vector<std::string>> out;
  std::map<std::uint32_t, std::vector<bgp::PrefixId>> by_atom;
  for (std::uint32_t row = 0;
       row < static_cast<std::uint32_t>(idx.prefix_count()); ++row) {
    by_atom[idx.lookup(idx.prefix_at(row))->atom].push_back(
        idx.prefix_id_at(row));
  }
  for (auto& [atom, members] : by_atom) {
    std::sort(members.begin(), members.end());
    const AtomRecord* rec = idx.atom(atom);
    std::vector<std::string> paths;
    for (const auto& [vp, pid] : rec->paths) {
      paths.push_back(std::to_string(vp) + ":" +
                      idx.paths().get(pid).to_string());
    }
    out[members] = std::move(paths);
  }
  return out;
}

std::map<std::vector<bgp::PrefixId>, std::vector<std::string>> batch_paths(
    const core::AtomSet& atoms) {
  std::map<std::vector<bgp::PrefixId>, std::vector<std::string>> out;
  for (const auto& atom : atoms.atoms) {
    std::vector<std::string> paths;
    for (const auto& [vp, pid] : atom.paths) {
      paths.push_back(std::to_string(vp) + ":" +
                      atoms.paths().get(pid).to_string());
    }
    out[atom.prefixes] = std::move(paths);
  }
  return out;
}

/// Two peers over a default route, nested aliased prefixes and a host
/// route — the LPM edge cases in one table.
DatasetBuilder lpm_dataset() {
  DatasetBuilder b;
  b.peer(100)
      .route("0.0.0.0/0", "100 1")
      .route("10.0.0.0/8", "100 2")
      .route("10.0.0.0/16", "100 3")
      .route("10.0.0.7/32", "100 4");
  b.peer(200)
      .route("0.0.0.0/0", "200 1")
      .route("10.0.0.0/8", "200 2")
      .route("10.0.0.0/16", "200 3")
      .route("10.0.0.7/32", "200 4");
  return b;
}

TEST(AtomIndex, LongestMatchEdgeCases) {
  DatasetBuilder b = lpm_dataset();
  const auto snap = sanitize(b.dataset(), 0, open_config());
  ASSERT_EQ(snap.prefixes.size(), 4u);
  const core::AtomSet atoms = core::compute_atoms(snap);
  const AtomIndex idx = AtomIndex::build(atoms);
  EXPECT_EQ(idx.prefix_count(), 4u);

  // Host route beats the aliased /16 and /8 covering the same address.
  EXPECT_EQ(idx.lookup(addr("10.0.0.7"))->prefix.to_string(), "10.0.0.7/32");
  // One bit over falls through to the /16 …
  EXPECT_EQ(idx.lookup(addr("10.0.0.8"))->prefix.to_string(), "10.0.0.0/16");
  // … out of the /16 to the /8 …
  EXPECT_EQ(idx.lookup(addr("10.1.2.3"))->prefix.to_string(), "10.0.0.0/8");
  // … and anywhere else to the default route.
  EXPECT_EQ(idx.lookup(addr("192.0.2.1"))->prefix.to_string(), "0.0.0.0/0");

  // CIDR queries match covering-or-equal: the exact prefix if stored,
  // else the longest strict supernet.
  EXPECT_EQ(idx.lookup(*net::Prefix::parse("10.0.0.0/16"))->prefix.to_string(),
            "10.0.0.0/16");
  EXPECT_EQ(idx.lookup(*net::Prefix::parse("10.0.0.0/12"))->prefix.to_string(),
            "10.0.0.0/8");

  // Every answer above (and the atom it carries) agrees with the oracle.
  for (const char* probe : {"10.0.0.7", "10.0.0.8", "10.1.2.3", "192.0.2.1",
                            "0.0.0.0", "255.255.255.255"}) {
    const auto got = idx.lookup(addr(probe));
    const auto want = oracle_match(snap, addr(probe));
    ASSERT_EQ(got.has_value(), want.has_value()) << probe;
    if (got) {
      EXPECT_EQ(got->prefix, *want) << probe;
      EXPECT_EQ(got->atom, atoms.atom_of.at(idx.prefix_id_at(got->row)))
          << probe;
    }
  }
}

TEST(AtomIndex, MissWithoutDefaultRoute) {
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/8", "100 1");
  b.peer(200).route("10.0.0.0/8", "200 1");
  const auto snap = sanitize(b.dataset(), 0, test::lax_config());
  const AtomIndex idx = AtomIndex::build(core::compute_atoms(snap));
  EXPECT_FALSE(idx.lookup(addr("11.0.0.1")).has_value());
  EXPECT_FALSE(idx.lookup(addr("9.255.255.255")).has_value());
  // A supernet of everything stored is not covered either.
  EXPECT_FALSE(idx.lookup(*net::Prefix::parse("0.0.0.0/0")).has_value());
  EXPECT_TRUE(idx.lookup(addr("10.200.0.1")).has_value());
}

TEST(AtomIndex, IPv6HostAndDefaultRoutes) {
  DatasetBuilder b(net::Family::kIPv6);
  b.peer(100)
      .route("::/0", "100 1")
      .route("2001:db8::/32", "100 2")
      .route("2001:db8::/48", "100 3")
      .route("2001:db8::7/128", "100 4");
  b.peer(200)
      .route("::/0", "200 1")
      .route("2001:db8::/32", "200 2")
      .route("2001:db8::/48", "200 3")
      .route("2001:db8::7/128", "200 4");
  const auto snap = sanitize(b.dataset(), 0, open_config());
  ASSERT_EQ(snap.prefixes.size(), 4u);
  const core::AtomSet atoms = core::compute_atoms(snap);
  const AtomIndex idx = AtomIndex::build(atoms);

  EXPECT_EQ(idx.lookup(addr("2001:db8::7"))->prefix.to_string(),
            "2001:db8::7/128");
  EXPECT_EQ(idx.lookup(addr("2001:db8::8"))->prefix.to_string(),
            "2001:db8::/48");
  EXPECT_EQ(idx.lookup(addr("2001:db8:1::1"))->prefix.to_string(),
            "2001:db8::/32");
  EXPECT_EQ(idx.lookup(addr("2001:db9::1"))->prefix.to_string(), "::/0");

  for (const char* probe :
       {"2001:db8::7", "2001:db8::8", "2001:db9::1", "::", "::1"}) {
    const auto got = idx.lookup(addr(probe));
    const auto want = oracle_match(snap, addr(probe));
    ASSERT_EQ(got.has_value(), want.has_value()) << probe;
    if (got) {
      EXPECT_EQ(got->prefix, *want) << probe;
      EXPECT_EQ(got->atom, atoms.atom_of.at(idx.prefix_id_at(got->row)))
          << probe;
    }
  }
}

/// Three peers, four prefixes (one seed atom of size 2), plus an update
/// tail that splits, churns, withdraws and re-merges.
DatasetBuilder churn_dataset() {
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 1")
      .route("10.1.0.0/16", "100 1")
      .route("10.2.0.0/16", "100 2")
      .route("10.3.0.0/16", "100 3 1");
  b.peer(200)
      .route("10.0.0.0/16", "200 1")
      .route("10.1.0.0/16", "200 1")
      .route("10.2.0.0/16", "200 2")
      .route("10.3.0.0/16", "200 3 1");
  b.peer(300)
      .route("10.0.0.0/16", "300 1")
      .route("10.1.0.0/16", "300 1")
      .route("10.2.0.0/16", "300 2")
      .route("10.3.0.0/16", "300 1");
  b.update(10, 0, "100 9 1", {"10.0.0.0/16"});  // split the size-2 atom
  b.update(20, 1, "200 2 2", {"10.2.0.0/16"});
  b.update(30, 2, "", {}, {"10.3.0.0/16"});
  b.update(50, 2, "300 4 1", {"10.3.0.0/16"});
  b.update(70, 0, "100 1", {"10.0.0.0/16"});  // re-merge the split pair
  b.update(80, 2, "300 2", {"10.2.0.0/16"});
  return b;
}

TEST(AtomIndex, BatchBuildIsBitIdenticalToComputeAtoms) {
  DatasetBuilder b = churn_dataset();
  const auto snap = sanitize(b.dataset(), 0, test::lax_config());
  const core::AtomSet atoms = core::compute_atoms(snap);
  const AtomIndex idx = AtomIndex::build(atoms);

  EXPECT_EQ(idx.prefix_count(), snap.prefixes.size());
  EXPECT_EQ(idx.atom_count(), atoms.atoms.size());
  EXPECT_EQ(idx.vp_count(), snap.vps.size());
  EXPECT_EQ(idx.timestamp(), snap.timestamp);
  EXPECT_EQ(idx.partition_fingerprint(), core::partition_fingerprint(atoms));

  // Atom ids equal AtomSet indices: record contents must be identical.
  for (std::uint32_t i = 0; i < atoms.atoms.size(); ++i) {
    const AtomRecord* rec = idx.atom(i);
    ASSERT_NE(rec, nullptr);
    std::vector<bgp::PrefixId> members;
    for (const auto row : rec->rows) members.push_back(idx.prefix_id_at(row));
    EXPECT_EQ(members, atoms.atoms[i].prefixes);
    EXPECT_EQ(rec->paths, atoms.atoms[i].paths);
    EXPECT_EQ(rec->origin, atoms.atoms[i].origin);
    EXPECT_EQ(rec->moas, atoms.atoms[i].moas);
    // atom_prefixes resolves members to values, ascending.
    const auto values = idx.atom_prefixes(i);
    ASSERT_EQ(values.size(), members.size());
    EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  }
  EXPECT_EQ(idx.atom(static_cast<std::uint32_t>(atoms.atoms.size())), nullptr);
  EXPECT_EQ(idx.atom(AtomIndex::kNoAtom), nullptr);
  EXPECT_EQ(index_paths(idx), batch_paths(atoms));
}

TEST(AtomIndex, RefreshFollowsLiveUpdatesInDirtyRowTime) {
  DatasetBuilder b = churn_dataset();
  const auto& ds = b.dataset();
  const auto snap = sanitize(ds, 0, test::lax_config());

  core::IncrementalAtoms live(snap, ds.paths);
  AtomIndex idx = AtomIndex::build(live);

  const std::span<const bgp::UpdateRecord> updates(ds.updates);
  for (std::size_t off = 0; off < updates.size(); off += 2) {
    live.apply(updates.subspan(off, std::min<std::size_t>(
                                        2, updates.size() - off)));
    idx.refresh(live);

    // The refreshed index must carry the exact recomputed partition.
    const auto rebuilt = live.rebuild_snapshot();
    const core::AtomSet batch = core::compute_atoms(rebuilt);
    EXPECT_EQ(idx.partition_fingerprint(),
              core::partition_fingerprint(batch));
    EXPECT_EQ(index_partition(idx), batch_partition(batch));
    EXPECT_EQ(index_paths(idx), batch_paths(batch));
    EXPECT_EQ(idx.atom_count(), batch.atoms.size());

    // And be content-identical to throwing the index away and
    // rebuilding from the live partition.
    const AtomIndex fresh = AtomIndex::build(live);
    EXPECT_EQ(index_partition(idx), index_partition(fresh));
    EXPECT_EQ(idx.partition_fingerprint(), fresh.partition_fingerprint());
  }
}

/// Two captures: at t=100 the {10.0, 10.1} atom splits at peer 100 while
/// the 10.2 atom is untouched.
DatasetBuilder two_snapshot_dataset() {
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 1")
      .route("10.1.0.0/16", "100 1")
      .route("10.2.0.0/16", "100 2");
  b.peer(200)
      .route("10.0.0.0/16", "200 1")
      .route("10.1.0.0/16", "200 1")
      .route("10.2.0.0/16", "200 2");
  b.snapshot(100);
  b.peer(100)
      .route("10.0.0.0/16", "100 1")
      .route("10.1.0.0/16", "100 9 1")  // diverges: the atom splits
      .route("10.2.0.0/16", "100 2");
  b.peer(200)
      .route("10.0.0.0/16", "200 1")
      .route("10.1.0.0/16", "200 1")
      .route("10.2.0.0/16", "200 2");
  return b;
}

TEST(Timeline, HistoryAndEquivalence) {
  DatasetBuilder b = two_snapshot_dataset();
  const auto snap0 = sanitize(b.dataset(), 0, test::lax_config());
  const auto snap1 = sanitize(b.dataset(), 1, test::lax_config());

  Timeline timeline;
  timeline.add("t0", std::make_shared<AtomIndex>(
                         AtomIndex::build(core::compute_atoms(snap0))));
  timeline.add("t1", std::make_shared<AtomIndex>(
                         AtomIndex::build(core::compute_atoms(snap1))));
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline.label(0), "t0");
  EXPECT_EQ(&timeline.latest(), &timeline.at(1));

  // The partitions differ, so the snapshots are not equivalent; a
  // re-added t1 index is equivalent to itself.
  EXPECT_FALSE(timeline.equivalent(0, 1));
  timeline.add("t1-again", timeline.share(1));
  EXPECT_TRUE(timeline.equivalent(1, 2));

  // 10.2's atom is composition-identical across snapshots.
  const auto stable = timeline.history(addr("10.2.0.5"));
  ASSERT_EQ(stable.size(), 3u);
  EXPECT_TRUE(stable[0].present);
  EXPECT_FALSE(stable[0].same_as_previous);
  EXPECT_TRUE(stable[1].present);
  EXPECT_TRUE(stable[1].same_as_previous);
  EXPECT_EQ(stable[1].matched.to_string(), "10.2.0.0/16");
  EXPECT_EQ(stable[1].size, 1u);
  EXPECT_EQ(stable[1].origin, 2u);

  // 10.0's atom shrinks from {10.0, 10.1} to {10.0}: present both times
  // but not the same composition.
  const auto split = timeline.history(addr("10.0.0.5"));
  ASSERT_EQ(split.size(), 3u);
  EXPECT_TRUE(split[0].present);
  EXPECT_EQ(split[0].size, 2u);
  EXPECT_TRUE(split[1].present);
  EXPECT_EQ(split[1].size, 1u);
  EXPECT_FALSE(split[1].same_as_previous);
  EXPECT_TRUE(split[2].same_as_previous);  // t1 re-added: unchanged

  // An uncovered address is absent everywhere.
  const auto miss = timeline.history(addr("192.0.2.1"));
  ASSERT_EQ(miss.size(), 3u);
  for (const auto& entry : miss) EXPECT_FALSE(entry.present);
}

TEST(Timeline, CompositionDigestIsOrderIndependent) {
  // The same composed value sets through two archives whose PrefixId
  // spaces differ (interning order reversed): digests must still match.
  DatasetBuilder fwd;
  fwd.peer(100).route("10.0.0.0/16", "100 1").route("10.1.0.0/16", "100 1");
  fwd.peer(200).route("10.0.0.0/16", "200 1").route("10.1.0.0/16", "200 1");
  DatasetBuilder rev;
  rev.peer(100).route("10.1.0.0/16", "100 1").route("10.0.0.0/16", "100 1");
  rev.peer(200).route("10.1.0.0/16", "200 1").route("10.0.0.0/16", "200 1");

  const auto snap_f = sanitize(fwd.dataset(), 0, test::lax_config());
  const auto snap_r = sanitize(rev.dataset(), 0, test::lax_config());
  const AtomIndex a = AtomIndex::build(core::compute_atoms(snap_f));
  const AtomIndex b = AtomIndex::build(core::compute_atoms(snap_r));

  const auto ma = a.lookup(addr("10.0.0.1"));
  const auto mb = b.lookup(addr("10.0.0.1"));
  ASSERT_TRUE(ma && mb);
  EXPECT_EQ(a.composition_digest(ma->atom), b.composition_digest(mb->atom));
  EXPECT_EQ(a.atom_prefixes(ma->atom), b.atom_prefixes(mb->atom));
}

}  // namespace
}  // namespace bgpatoms::query
