// The report layer: experiment registry, Check semantics, JSON
// round-trip, the shared campaign cache, and run-option resolution.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "core/env.h"
#include "core/longitudinal.h"
#include "core/parallel.h"
#include "report/cache.h"
#include "report/check.h"
#include "report/experiment.h"
#include "report/json.h"
#include "report/options.h"

namespace bgpatoms {
namespace {

using report::Check;
using report::Experiment;
using report::Registry;

Experiment make(const char* id, const char* name = "", const char* title = "",
                const char* section = "") {
  Experiment e;
  e.id = id;
  e.section = section;
  e.name = name;
  e.title = title;
  e.run = [](report::Context&) {};
  return e;
}

// ---------------------------------------------------------------- registry

TEST(Registry, FindAndOrder) {
  Registry r;
  r.add(make("table1", "Table 1"));
  r.add(make("fig04", "Figure 4"));
  ASSERT_NE(r.find("fig04"), nullptr);
  EXPECT_EQ(r.find("fig04")->name, "Figure 4");
  EXPECT_EQ(r.find("nope"), nullptr);
  const auto all = r.all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->id, "table1");
  EXPECT_EQ(all[1]->id, "fig04");
}

TEST(Registry, RejectsDuplicateAndEmptyIds) {
  Registry r;
  r.add(make("fig01"));
  EXPECT_THROW(r.add(make("fig01")), std::invalid_argument);
  EXPECT_THROW(r.add(make("")), std::invalid_argument);
}

TEST(Registry, MatchIsCaseInsensitiveOverAllFields) {
  Registry r;
  r.add(make("table1", "Table 1", "General statistics", "§4.1"));
  r.add(make("fig05", "Figure 5", "Stability trend", "§4.4"));
  r.add(make("fig09", "Figure 9", "IPv6 stability trend", "§5.2"));

  EXPECT_EQ(r.match({"FIG05"}).size(), 1u);          // id
  EXPECT_EQ(r.match({"stability"}).size(), 2u);      // title
  EXPECT_EQ(r.match({"§4."}).size(), 2u);            // section
  EXPECT_EQ(r.match({"table1", "fig05"}).size(), 2u);  // union
  EXPECT_EQ(r.match({}).size(), 3u);                 // empty = all
  EXPECT_TRUE(r.match({"zzz"}).empty());
}

// ------------------------------------------------------------------ checks

TEST(Check, BooleanFactory) {
  EXPECT_TRUE(Check::that("x", true, "obs").passed);
  EXPECT_FALSE(Check::that("x", false, "obs").passed);
  EXPECT_EQ(Check::that("x", true, "obs", "paper").paper, "paper");
}

TEST(Check, NumericRelations) {
  EXPECT_TRUE(Check::less("a", 1.0, 2.0, "").passed);
  EXPECT_FALSE(Check::less("a", 2.0, 1.0, "").passed);
  EXPECT_FALSE(Check::less("a", 1.0, 1.0, "").passed);  // strict
  EXPECT_TRUE(Check::greater("b", 2.0, 1.0, "").passed);
  EXPECT_TRUE(Check::near("c", 1.05, 1.0, 0.1, "").passed);
  EXPECT_FALSE(Check::near("c", 1.2, 1.0, 0.1, "").passed);
  // The relation string records the operands for the rendered output.
  EXPECT_NE(Check::less("a", 0.25, 0.5, "").relation.find("0.25"),
            std::string::npos);
}

TEST(Check, NanAlwaysFails) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(Check::less("a", nan, 1.0, "").passed);
  EXPECT_FALSE(Check::greater("a", nan, 0.0, "").passed);
  EXPECT_FALSE(Check::near("a", nan, 0.0, 10.0, "").passed);
}

// The exact relations the ported experiments assert (fig04 / fig05 /
// fig12 shapes), pinned so a refactor of the experiment code cannot
// silently weaken them.
TEST(Check, PaperShapeRelations) {
  // fig04: distance-1 share falls by more than 5pp over the period.
  const double first_d1 = 0.5522, last_d1 = 0.3137;
  EXPECT_TRUE(Check::less("d1 falls", last_d1, first_d1 - 0.05, "").passed);
  EXPECT_FALSE(Check::less("d1 falls", 0.52, first_d1 - 0.05, "").passed);
  // fig05: pre-2023 floor above 90%, final year dips below the floor.
  const double min_cam8 = 0.936, last_cam8 = 0.819;
  EXPECT_TRUE(Check::greater("floor", min_cam8, 0.90, "").passed);
  EXPECT_TRUE(Check::less("dip", last_cam8, min_cam8, "").passed);
  // fig12: the full-feed threshold grows by more than 2x.
  EXPECT_TRUE(Check::greater("growth", 6.3, 2.0, "").passed);
}

// -------------------------------------------------------------------- JSON

TEST(Json, RoundTripPreservesStructure) {
  report::json::Object inner;
  inner.emplace_back("name", report::json::Value("atoms grow"));
  inner.emplace_back("passed", report::json::Value(true));
  inner.emplace_back("value", report::json::Value(0.315));
  report::json::Array checks;
  checks.emplace_back(std::move(inner));
  report::json::Object root;
  root.emplace_back("schema", report::json::Value("bgpatoms-report/1"));
  root.emplace_back("count", report::json::Value(3));
  root.emplace_back("seed", report::json::Value(nullptr));
  root.emplace_back("checks", report::json::Value(std::move(checks)));
  const report::json::Value doc{std::move(root)};

  const auto parsed = report::json::Value::parse(doc.serialize());
  EXPECT_EQ(parsed, doc);
  ASSERT_NE(parsed.find("checks"), nullptr);
  const auto& check = parsed.find("checks")->as_array().at(0);
  EXPECT_EQ(check.find("name")->as_string(), "atoms grow");
  EXPECT_TRUE(check.find("passed")->as_bool());
  EXPECT_DOUBLE_EQ(check.find("value")->as_number(), 0.315);
  EXPECT_TRUE(parsed.find("seed")->is_null());
}

TEST(Json, StringEscapesRoundTrip) {
  const report::json::Value v(std::string("§4.3 \"quoted\"\nline\ttab"));
  EXPECT_EQ(report::json::Value::parse(v.serialize()), v);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(report::json::Value::parse("{"), std::runtime_error);
  EXPECT_THROW(report::json::Value::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(report::json::Value::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(report::json::Value::parse("'single'"), std::runtime_error);
}

TEST(Json, IntegersAboveTwoPow53SerializeDigitExact) {
  // 2^53 + 1 is the first integer a double cannot represent: the old
  // double round-trip printed 9007199254740992 for it. Counters from the
  // obs registry flow through here, so the full u64 range must survive.
  const std::uint64_t big = (std::uint64_t{1} << 53) + 1;
  EXPECT_EQ(report::json::Value(big).serialize(), "9007199254740993");
  EXPECT_EQ(report::json::Value(UINT64_MAX).serialize(),
            "18446744073709551615");
  EXPECT_EQ(report::json::Value(INT64_MIN).serialize(),
            "-9223372036854775808");

  const auto parsed = report::json::Value::parse("18446744073709551615");
  ASSERT_TRUE(parsed.is_integer());
  EXPECT_EQ(parsed.as_uint64(), UINT64_MAX);
  EXPECT_EQ(report::json::Value::parse("9007199254740993").as_uint64(), big);
  EXPECT_EQ(report::json::Value::parse("-7").as_int64(), -7);

  // Full round trip: serialize -> parse -> equal, for values where the
  // double path would already have drifted.
  for (const report::json::Value v :
       {report::json::Value(big), report::json::Value(UINT64_MAX),
        report::json::Value(INT64_MIN)}) {
    EXPECT_EQ(report::json::Value::parse(v.serialize()), v);
  }
}

TEST(Json, NumericEqualityCrossesRepresentations) {
  using report::json::Value;
  // Same mathematical value, different alternatives.
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_EQ(Value(std::uint64_t{3}), Value(std::int64_t{3}));
  EXPECT_EQ(Value(std::uint64_t{3}), Value(3.0));
  // Not equal: sign mismatch, and an integer a double cannot hold.
  EXPECT_FALSE(Value(std::int64_t{-1}) == Value(UINT64_MAX));
  const std::uint64_t big = (std::uint64_t{1} << 53) + 1;
  EXPECT_FALSE(Value(big) == Value(9007199254740992.0));
  // Fractional literals still parse as doubles and round-trip.
  const auto frac = report::json::Value::parse("0.25");
  EXPECT_FALSE(frac.is_integer());
  EXPECT_DOUBLE_EQ(frac.as_number(), 0.25);
  // Integer-valued but exponent-marked literals stay on the double path.
  EXPECT_FALSE(report::json::Value::parse("1e3").is_integer());
  EXPECT_EQ(report::json::Value::parse("1e3"), Value(1000));
  // Out-of-range integer literals fall back to double instead of failing.
  const auto huge = report::json::Value::parse("99999999999999999999999999");
  EXPECT_FALSE(huge.is_integer());
  EXPECT_DOUBLE_EQ(huge.as_number(), 1e26);
}

// ------------------------------------------------------------------- cache

TEST(CampaignCache, KeyCoversConfigFields) {
  core::CampaignConfig a;
  a.year = 2004.0;
  a.scale = 0.002;
  a.seed = 42;
  core::CampaignConfig b = a;
  EXPECT_EQ(report::campaign_cache_key(a), report::campaign_cache_key(b));
  b.seed = 43;
  EXPECT_NE(report::campaign_cache_key(a), report::campaign_cache_key(b));
  b = a;
  b.with_updates = true;
  EXPECT_NE(report::campaign_cache_key(a), report::campaign_cache_key(b));
  b = a;
  b.sanitize.min_peer_ases = 1;
  EXPECT_NE(report::campaign_cache_key(a), report::campaign_cache_key(b));
}

TEST(CampaignCache, SecondCampaignRequestIsAPointerIdenticalHit) {
  report::CampaignCache cache;
  core::CampaignConfig config;
  config.year = 2004.0;
  config.scale = 0.002;
  config.seed = 42;
  const auto first = cache.campaign(config);
  const auto second = cache.campaign(config);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().campaign_hits, 1u);
  EXPECT_EQ(cache.stats().campaign_misses, 1u);
}

TEST(CampaignCache, SweepHitsMatchColdRunBitExactly) {
  std::vector<core::SweepJob> jobs;
  jobs.push_back(core::quarter_job(net::Family::kIPv4, 2010.0, 0.002, 11));
  jobs.push_back(core::quarter_job(net::Family::kIPv4, 2012.0, 0.002, 12));
  core::SweepOptions options;
  options.threads = 1;

  const auto cold = core::run_sweep(jobs, options);

  report::CampaignCache cache;
  const auto warm1 = cache.sweep(jobs, options);
  EXPECT_EQ(cache.stats().quarter_misses, 2u);
  const auto warm2 = cache.sweep(jobs, options);
  EXPECT_EQ(cache.stats().quarter_hits, 2u);
  EXPECT_EQ(warm1, cold);
  EXPECT_EQ(warm2, cold);
}

TEST(CampaignCache, SweepDerivesSeedsAtOriginalIndices) {
  // A job with seed 0 takes derive_seed(base_seed, i) at its position i —
  // also when an earlier job in the list is already cached.
  std::vector<core::SweepJob> jobs;
  jobs.push_back(core::quarter_job(net::Family::kIPv4, 2010.0, 0.002, 21));
  core::SweepJob derived;
  derived.config.year = 2012.0;
  derived.config.scale = 0.002;
  derived.config.seed = 0;  // finalized from base_seed and index
  jobs.push_back(derived);
  core::SweepOptions options;
  options.threads = 1;
  options.base_seed = 7;

  const auto cold = core::run_sweep(jobs, options);
  report::CampaignCache cache;
  cache.sweep({jobs[0]}, options);  // prime only the first job
  const auto mixed = cache.sweep(jobs, options);
  EXPECT_EQ(mixed, cold);
  EXPECT_EQ(cache.stats().quarter_hits, 1u);
}

// ----------------------------------------------------------------- options

class RunOptionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("BGPATOMS_SCALE");
    unsetenv("BGPATOMS_SEED");
    core::reset_env_warnings_for_test();
  }
  void TearDown() override {
    unsetenv("BGPATOMS_SCALE");
    unsetenv("BGPATOMS_SEED");
    core::reset_env_warnings_for_test();
  }
};

TEST_F(RunOptionsTest, DefaultsWhenNothingIsSet) {
  const auto options = report::resolve_run_options();
  EXPECT_DOUBLE_EQ(options.scale_multiplier, 1.0);
  EXPECT_EQ(options.threads, 0);
  EXPECT_FALSE(options.seed.has_value());
  EXPECT_FALSE(options.strict_checks);
}

TEST_F(RunOptionsTest, EnvironmentIsRead) {
  setenv("BGPATOMS_SCALE", "0.25", 1);
  setenv("BGPATOMS_SEED", "99", 1);
  const auto options = report::resolve_run_options();
  EXPECT_DOUBLE_EQ(options.scale_multiplier, 0.25);
  ASSERT_TRUE(options.seed.has_value());
  EXPECT_EQ(*options.seed, 99u);
}

TEST_F(RunOptionsTest, FlagsTakePrecedenceOverEnvironment) {
  setenv("BGPATOMS_SCALE", "0.25", 1);
  setenv("BGPATOMS_SEED", "99", 1);
  const auto options =
      report::resolve_run_options(std::string("0.5"), std::string("3"),
                                  std::string("7"));
  EXPECT_DOUBLE_EQ(options.scale_multiplier, 0.5);
  EXPECT_EQ(options.threads, 3);
  EXPECT_EQ(*options.seed, 7u);
}

TEST_F(RunOptionsTest, MalformedFlagThrows) {
  EXPECT_THROW(report::resolve_run_options(std::string("0.5abc")),
               report::OptionError);
  EXPECT_THROW(report::resolve_run_options(std::nullopt, std::string("two")),
               report::OptionError);
  EXPECT_THROW(report::resolve_run_options(std::string("-1")),
               report::OptionError);
}

TEST_F(RunOptionsTest, MalformedEnvironmentFallsBackToDefault) {
  setenv("BGPATOMS_SCALE", "0.5abc", 1);
  const auto options = report::resolve_run_options();
  EXPECT_DOUBLE_EQ(options.scale_multiplier, 1.0);
}

// ------------------------------------------------------------- env parsing

TEST(EnvParsing, RejectsTrailingGarbageAndEmpty) {
  EXPECT_EQ(core::parse_double("0.5abc"), std::nullopt);
  EXPECT_EQ(core::parse_double("12 "), std::nullopt);
  EXPECT_EQ(core::parse_double(""), std::nullopt);
  EXPECT_DOUBLE_EQ(*core::parse_double("0.25"), 0.25);
  EXPECT_EQ(core::parse_int("4x"), std::nullopt);
  EXPECT_EQ(*core::parse_int("-4"), -4);
  EXPECT_EQ(core::parse_uint("-4"), std::nullopt);
  EXPECT_EQ(*core::parse_uint("42"), 42u);
}

}  // namespace
}  // namespace bgpatoms
