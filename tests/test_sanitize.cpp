// Tests for the §2.4 sanitization pipeline on hand-built dirty datasets.
#include <gtest/gtest.h>

#include "core/sanitize.h"
#include "testutil.h"

namespace bgpatoms::core {
namespace {

using test::DatasetBuilder;

TEST(Sanitize, FullFeedInference) {
  DatasetBuilder b;
  b.collector("rrc00");
  // Peer 1: 20 prefixes (the max). Peer 2: 19 (95% >= 90%: kept). Peer 3:
  // 9 (45%: cut). The rule is "at least 90% of the maximum count" (§2.4).
  b.peer(100);
  for (int i = 0; i < 20; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "100 50");
  }
  b.peer(200);
  for (int i = 0; i < 19; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "200 50");
  }
  b.peer(300);
  for (int i = 0; i < 9; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "300 50");
  }

  SanitizeConfig config;
  config.min_collectors = 1;
  config.min_peer_ases = 1;
  const auto snap = sanitize(b.dataset(), 0, config);
  EXPECT_EQ(snap.report.max_unique_prefixes, 20u);
  EXPECT_EQ(snap.report.full_feed_peers, 2u);
  ASSERT_EQ(snap.report.removed_peers.size(), 1u);
  EXPECT_EQ(snap.report.removed_peers[0].peer.asn, 300u);
  EXPECT_EQ(snap.report.removed_peers[0].reason,
            PeerRemovalReason::kPartialFeed);
}

TEST(Sanitize, ExactlyNinetyPercentIsFullFeed) {
  // Boundary regression (§2.4): 0.9 × 10 = 9 exactly, and a peer carrying
  // exactly the threshold count qualifies — the rule is >=, not >. A peer
  // one prefix short does not.
  DatasetBuilder b;
  b.peer(100);
  for (int i = 0; i < 10; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "100 50");
  }
  b.peer(200);
  for (int i = 0; i < 9; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "200 50");
  }
  b.peer(300);
  for (int i = 0; i < 8; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "300 50");
  }
  SanitizeConfig config;
  config.min_collectors = 1;
  config.min_peer_ases = 1;
  const auto snap = sanitize(b.dataset(), 0, config);
  EXPECT_EQ(snap.report.full_feed_peers, 2u);
  ASSERT_EQ(snap.report.removed_peers.size(), 1u);
  EXPECT_EQ(snap.report.removed_peers[0].peer.asn, 300u);
}

TEST(Sanitize, BinaryEpsilonAtTheFullFeedBoundary) {
  // 0.8 has no exact binary representation: 0.8 * 35 computes to
  // 28.000000000000004, so a bare ceil() would demand 29 prefixes and
  // silently drop a peer sitting exactly at 80%. The threshold is
  // computed as ceil(fraction * max - 1e-9) to keep the >= rule exact
  // under that representation error; this pins it.
  DatasetBuilder b;
  b.peer(100);
  for (int i = 0; i < 35; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "100 50");
  }
  b.peer(200);  // exactly 28 of 35 = 80%: must qualify
  for (int i = 0; i < 28; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "200 50");
  }
  b.peer(300);  // 27 of 35: one short, must not
  for (int i = 0; i < 27; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "300 50");
  }
  SanitizeConfig config;
  config.min_collectors = 1;
  config.min_peer_ases = 1;
  config.full_feed_fraction = 0.8;
  const auto snap = sanitize(b.dataset(), 0, config);
  EXPECT_EQ(snap.report.full_feed_peers, 2u);
  ASSERT_EQ(snap.report.removed_peers.size(), 1u);
  EXPECT_EQ(snap.report.removed_peers[0].peer.asn, 300u);
}

TEST(Sanitize, FullFeedThresholdConfigurable) {
  DatasetBuilder b;
  b.peer(100);
  for (int i = 0; i < 10; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "100 50");
  }
  b.peer(200);
  for (int i = 0; i < 5; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "200 50");
  }
  SanitizeConfig config;
  config.min_collectors = 1;
  config.min_peer_ases = 1;
  config.full_feed_fraction = 0.4;  // 5/10 > 40%: both kept
  EXPECT_EQ(sanitize(b.dataset(), 0, config).report.full_feed_peers, 2u);
}

TEST(Sanitize, AddPathBrokenPeerRemoved) {
  DatasetBuilder b;
  b.peer(100);
  for (int i = 0; i < 20; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "100 50");
  }
  b.peer(666);
  for (int i = 0; i < 20; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "666 50",
            i % 5 == 0 ? bgp::RecordStatus::kCorruptSubtype
                       : bgp::RecordStatus::kValid);
  }
  const auto snap = sanitize(b.dataset(), 0, test::lax_config_with_abnormal());
  ASSERT_EQ(snap.report.removed_peers.size(), 1u);
  EXPECT_EQ(snap.report.removed_peers[0].peer.asn, 666u);
  EXPECT_EQ(snap.report.removed_peers[0].reason,
            PeerRemovalReason::kAddPathArtifacts);
}

TEST(Sanitize, PrivateAsnInjectorRemoved) {
  DatasetBuilder b;
  b.peer(100);
  for (int i = 0; i < 10; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "100 50");
  }
  b.peer(25885);  // the paper's misconfigured peer
  for (int i = 0; i < 10; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16",
            i < 6 ? "25885 65000 50" : "25885 50");
  }
  const auto snap = sanitize(b.dataset(), 0, test::lax_config_with_abnormal());
  ASSERT_EQ(snap.report.removed_peers.size(), 1u);
  EXPECT_EQ(snap.report.removed_peers[0].peer.asn, 25885u);
  EXPECT_EQ(snap.report.removed_peers[0].reason,
            PeerRemovalReason::kPrivateAsnInjection);
  EXPECT_NEAR(snap.report.removed_peers[0].artifact_share, 0.6, 0.01);
}

TEST(Sanitize, OwnPrivateAsnHeadDoesNotTriggerRemoval) {
  // A private peer ASN in the FIRST hop is the peer itself (common for
  // route servers); only bogons deeper in the path signal injection.
  DatasetBuilder b;
  b.peer(65000);
  for (int i = 0; i < 10; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "65000 50");
  }
  const auto snap = sanitize(b.dataset(), 0, test::lax_config_with_abnormal());
  EXPECT_TRUE(snap.report.removed_peers.empty());
}

TEST(Sanitize, DuplicateEmitterRemoved) {
  DatasetBuilder b;
  b.peer(100);
  for (int i = 0; i < 10; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "100 50");
  }
  b.peer(200);
  for (int i = 0; i < 10; ++i) {
    b.route("10." + std::to_string(i) + ".0.0/16", "200 50");
    if (i < 2) b.route("10." + std::to_string(i) + ".0.0/16", "200 50");
  }
  const auto snap = sanitize(b.dataset(), 0, test::lax_config_with_abnormal());
  ASSERT_EQ(snap.report.removed_peers.size(), 1u);
  EXPECT_EQ(snap.report.removed_peers[0].peer.asn, 200u);
  EXPECT_EQ(snap.report.removed_peers[0].reason,
            PeerRemovalReason::kExcessiveDuplicates);
}

TEST(Sanitize, VisibilityFilterCollectors) {
  DatasetBuilder b;
  b.collector("rrc00").collector("rrc01");
  // Prefix A seen at both collectors (4 peer ASes), prefix B only at one.
  for (int coll = 0; coll < 2; ++coll) {
    for (int p = 0; p < 2; ++p) {
      b.peer(100 + coll * 10 + p, static_cast<std::uint16_t>(coll));
      b.route("10.0.0.0/16", "1 50");
      if (coll == 0) b.route("10.1.0.0/16", "1 50");
    }
  }
  SanitizeConfig config;
  config.min_collectors = 2;
  config.min_peer_ases = 4;
  config.full_feed_only = false;  // isolate the visibility filter
  const auto snap = sanitize(b.dataset(), 0, config);
  EXPECT_EQ(snap.report.prefixes_kept, 1u);
  EXPECT_EQ(snap.report.prefixes_dropped_visibility, 1u);
  ASSERT_EQ(snap.prefixes.size(), 1u);
  EXPECT_EQ(snap.prefix(snap.prefixes[0]), *net::Prefix::parse("10.0.0.0/16"));
}

TEST(Sanitize, VisibilityFilterPeerAses) {
  DatasetBuilder b;
  b.collector("rrc00").collector("rrc01");
  // Prefix seen at 2 collectors but only 3 distinct peer ASes.
  b.peer(100, 0).route("10.0.0.0/16", "1 50");
  b.peer(200, 1).route("10.0.0.0/16", "1 50");
  b.peer(300, 0).route("10.0.0.0/16", "1 50");
  SanitizeConfig config;
  config.min_collectors = 2;
  config.min_peer_ases = 4;
  config.full_feed_only = false;
  const auto snap = sanitize(b.dataset(), 0, config);
  EXPECT_EQ(snap.report.prefixes_kept, 0u);
}

TEST(Sanitize, LengthFilterPerFamily) {
  DatasetBuilder b4(net::Family::kIPv4);
  b4.peer(100).route("10.0.0.0/24", "1 50").route("10.1.0.0/25", "1 50");
  auto snap = sanitize(b4.dataset(), 0, test::lax_config());
  EXPECT_EQ(snap.report.prefixes_dropped_length, 1u);
  EXPECT_EQ(snap.report.prefixes_kept, 1u);

  DatasetBuilder b6(net::Family::kIPv6);
  b6.peer(100)
      .route("2001:db8::/48", "1 50")
      .route("2001:db9::/49", "1 50");
  snap = sanitize(b6.dataset(), 0, test::lax_config());
  EXPECT_EQ(snap.report.prefixes_dropped_length, 1u);
}

TEST(Sanitize, LengthFilterDisabled) {
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/28", "1 50");
  auto config = test::lax_config();
  config.max_prefix_length = 128;  // the 2002 reproduction setting (§3.1.3)
  const auto snap = sanitize(b.dataset(), 0, config);
  EXPECT_EQ(snap.report.prefixes_kept, 1u);
}

TEST(Sanitize, SingletonAsSetExpanded) {
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 2 [3]");
  const auto snap = sanitize(b.dataset(), 0, test::lax_config());
  EXPECT_EQ(snap.report.asset_paths_expanded, 1u);
  ASSERT_EQ(snap.vps.size(), 1u);
  ASSERT_EQ(snap.vps[0].routes.size(), 1u);
  const auto& path = snap.paths.get(snap.vps[0].routes[0].second);
  EXPECT_FALSE(path.has_set());
  EXPECT_EQ(path, net::AsPath::sequence({100, 2, 3}));
}

TEST(Sanitize, MultiMemberAsSetDropped) {
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 2 [3 4]")
      .route("10.1.0.0/16", "100 2 5");
  const auto snap = sanitize(b.dataset(), 0, test::lax_config());
  EXPECT_EQ(snap.report.records_dropped_asset, 1u);
  EXPECT_EQ(snap.vps[0].routes.size(), 1u);
}

TEST(Sanitize, CorruptRecordsDropped) {
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 50", bgp::RecordStatus::kInvalidNlri)
      .route("10.1.0.0/16", "100 50");
  const auto snap = sanitize(b.dataset(), 0, test::lax_config());
  EXPECT_EQ(snap.report.records_dropped_corrupt, 1u);
  EXPECT_EQ(snap.vps[0].routes.size(), 1u);
}

TEST(Sanitize, DuplicateRecordsCollapse) {
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 50")
      .route("10.0.0.0/16", "100 50")
      .route("10.0.0.0/16", "100 60 50");
  const auto snap = sanitize(b.dataset(), 0, test::lax_config());
  ASSERT_EQ(snap.vps[0].routes.size(), 1u);
}

TEST(Sanitize, MoasCountedNotRemoved) {
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 1");
  b.peer(200).route("10.0.0.0/16", "200 2");  // different origin
  const auto snap = sanitize(b.dataset(), 0, test::lax_config());
  EXPECT_EQ(snap.report.moas_prefixes, 1u);
  EXPECT_EQ(snap.report.prefixes_kept, 1u);  // kept, per §2.4.3
}

TEST(Sanitize, PathForLookup) {
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 1").route("10.2.0.0/16", "100 2");
  const auto snap = sanitize(b.dataset(), 0, test::lax_config());
  const auto& table = snap.vps[0];
  const auto present = snap.prefixes[0];
  EXPECT_NE(table.path_for(present), net::PathPool::kEmptyPathId);
  EXPECT_EQ(table.path_for(9999), net::PathPool::kEmptyPathId);
}

TEST(Sanitize, ReasonStrings) {
  EXPECT_STREQ(to_string(PeerRemovalReason::kAddPathArtifacts),
               "ADD-PATH artifacts");
  EXPECT_STREQ(to_string(PeerRemovalReason::kPartialFeed), "partial feed");
}

}  // namespace
}  // namespace bgpatoms::core
