// Scenario engine tests: sub-prefix construction, ROV validation and
// adoption, multi-origin / leak / rank propagation through the policy
// engine, era security anchors, and end-to-end simulator incidents.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "routing/policy_engine.h"
#include "routing/propagation.h"
#include "routing/rov.h"
#include "routing/scenario.h"
#include "routing/simulator.h"
#include "topo/era.h"

namespace bgpatoms::routing {
namespace {

using topo::AsGraph;
using topo::NodeId;
using topo::Rel;
using topo::Tier;

struct GraphBuilder {
  AsGraph g;
  NodeId add(net::Asn asn, Tier tier = Tier::kEdge, std::uint16_t region = 0) {
    return g.add_node(asn, tier, region, asn);
  }
  void provider(NodeId a, NodeId b) { g.add_edge(a, b, Rel::kProvider); }
  void peer(NodeId a, NodeId b) { g.add_edge(a, b, Rel::kPeer); }
};

// --- make_subprefix --------------------------------------------------------

TEST(Scenario, MakeSubprefixHalvesV4) {
  const auto base = *net::Prefix::parse("10.0.0.0/16");
  EXPECT_EQ(make_subprefix(base, 1, false)->to_string(), "10.0.0.0/17");
  EXPECT_EQ(make_subprefix(base, 1, true)->to_string(), "10.0.128.0/17");
  EXPECT_EQ(make_subprefix(base, 2, false)->to_string(), "10.0.0.0/18");
  EXPECT_EQ(make_subprefix(base, 2, true)->to_string(), "10.0.128.0/18");
}

TEST(Scenario, MakeSubprefixHalvesV6) {
  const auto base = *net::Prefix::parse("2001:db8::/32");
  EXPECT_EQ(make_subprefix(base, 1, false)->to_string(), "2001:db8::/33");
  EXPECT_EQ(make_subprefix(base, 1, true)->to_string(), "2001:db8:8000::/33");
  // Upper-half bit lands in the low 64 bits for long prefixes.
  const auto deep = *net::Prefix::parse("2001:db8::/66");
  const auto upper = make_subprefix(deep, 1, true);
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(upper->length(), 67);
  EXPECT_TRUE(deep.contains(*upper));
  EXPECT_NE(*upper, *make_subprefix(deep, 1, false));
}

TEST(Scenario, MakeSubprefixRejectsOverlongResults) {
  EXPECT_FALSE(make_subprefix(*net::Prefix::parse("10.1.2.3/32"), 1, false));
  EXPECT_FALSE(make_subprefix(*net::Prefix::parse("10.0.0.0/31"), 2, true));
  EXPECT_TRUE(make_subprefix(*net::Prefix::parse("10.0.0.0/31"), 1, true));
}

// --- ROA validation --------------------------------------------------------

TEST(Scenario, RoaValidationFollowsRfc6811) {
  RoaTable roas;
  roas.add(*net::Prefix::parse("10.0.0.0/16"), 64500, 20);

  // Matching origin within maxLength: valid.
  EXPECT_EQ(roas.validate(*net::Prefix::parse("10.0.0.0/16"), 64500),
            RovStatus::kValid);
  EXPECT_EQ(roas.validate(*net::Prefix::parse("10.0.128.0/20"), 64500),
            RovStatus::kValid);
  // Too specific or wrong origin: invalid.
  EXPECT_EQ(roas.validate(*net::Prefix::parse("10.0.0.0/24"), 64500),
            RovStatus::kInvalid);
  EXPECT_EQ(roas.validate(*net::Prefix::parse("10.0.0.0/16"), 64501),
            RovStatus::kInvalid);
  // Uncovered space: unknown.
  EXPECT_EQ(roas.validate(*net::Prefix::parse("11.0.0.0/16"), 64500),
            RovStatus::kUnknown);
}

TEST(Scenario, RovStateSeedsRequestedAdoption) {
  GraphBuilder b;
  for (int i = 0; i < 2000; ++i) {
    b.add(static_cast<net::Asn>(100 + i),
          i % 10 == 0 ? Tier::kTransit : Tier::kEdge);
  }
  RovState rov;
  Rng rng(7);
  rov.seed_adoption(b.g, 0.25, rng);
  const double frac = rov.validating_fraction();
  EXPECT_GT(frac, 0.18);
  EXPECT_LT(frac, 0.32);

  const std::size_t before = rov.validating_count();
  NodeId off = 0;
  while (rov.validating(off)) ++off;
  rov.set_validating(off, true);
  EXPECT_EQ(rov.validating_count(), before + 1);
  rov.set_validating(off, true);  // idempotent
  EXPECT_EQ(rov.validating_count(), before + 1);
  rov.set_validating(off, false);
  EXPECT_EQ(rov.validating_count(), before);
}

// --- multi-origin propagation ---------------------------------------------

TEST(Scenario, MultiOriginNodesPickTheNearerSource) {
  // o1 - m1 - m2 - o2: a 4-chain of provider edges up to a shared top is
  // overkill; use a line where each end originates.
  GraphBuilder b;
  const NodeId o1 = b.add(10), m1 = b.add(20, Tier::kTransit),
               m2 = b.add(30, Tier::kTransit), o2 = b.add(40);
  b.provider(o1, m1);
  b.provider(m1, m2);
  b.provider(o2, m2);

  Propagator prop(b.g);
  const std::vector<RouteSource> sources{{o1, nullptr, false},
                                         {o2, nullptr, false}};
  const GaoRexfordEngine engine(b.g);
  RouteTable t;
  prop.compute(sources, engine, t);

  EXPECT_EQ(t.source[o1], 0);
  EXPECT_EQ(t.source[o2], 1);
  EXPECT_EQ(t.source[m1], 0) << "m1 is adjacent to o1";
  EXPECT_EQ(t.source[m2], 1) << "m2 is adjacent to o2";
  EXPECT_EQ(prop.extract_path(t, m2).flat(), (std::vector<net::Asn>{40}));
}

TEST(Scenario, RovDropsInvalidSourceAtValidatingNodes) {
  GraphBuilder b;
  const NodeId o = b.add(10), p = b.add(20, Tier::kTransit),
               q = b.add(30, Tier::kTransit);
  b.provider(o, p);
  b.provider(p, q);

  RovState rov;
  rov.set_validating(q, true);
  Propagator prop(b.g);
  const std::vector<RouteSource> sources{{o, nullptr, /*rov_invalid=*/true}};
  const GaoRexfordEngine engine(b.g, &rov);
  RouteTable t;
  prop.compute(sources, engine, t);

  EXPECT_TRUE(t.reachable(p)) << "non-validating ASes still accept";
  EXPECT_FALSE(t.reachable(q)) << "validating AS drops the invalid route";
}

TEST(Scenario, RouteLeakReExportsToProviders) {
  // o -> t1 (transit); leaker L is a customer of both t1 and t2. Valley-free,
  // t2 never hears the route (L's route is provider-learned). A leaking L
  // re-exports it to t2 as if customer-learned.
  GraphBuilder b;
  const NodeId o = b.add(10), t1 = b.add(20, Tier::kTransit),
               leaker = b.add(30, Tier::kTransit),
               t2 = b.add(40, Tier::kTransit);
  b.provider(o, t1);
  b.provider(leaker, t1);
  b.provider(leaker, t2);

  Propagator prop(b.g);
  const std::vector<RouteSource> sources{{o, nullptr, false}};
  RouteTable t;

  prop.compute(sources, GaoRexfordEngine(b.g), t);
  EXPECT_FALSE(t.reachable(t2)) << "valley-free keeps t2 dark";

  prop.compute(sources, GaoRexfordEngine(b.g, nullptr, leaker), t);
  ASSERT_TRUE(t.reachable(t2));
  EXPECT_EQ(t.cls[t2], RouteClass::kCustomer)
      << "the leaked route arrives as if customer-learned";
  EXPECT_EQ(prop.extract_path(t, t2).flat(),
            (std::vector<net::Asn>{30, 20, 10}));
  // The leaker's own route is pinned from the first pass: no self-loop.
  EXPECT_EQ(t.cls[leaker], RouteClass::kProvider);
}

TEST(Scenario, SelectionRankBreaksTiesBeforeNeighborAsn) {
  // v is the provider of both origins: two customer routes of equal
  // length. The default tie-break picks the lower neighbor ASN (o1); a
  // rank that prefers source 1 overrides it.
  GraphBuilder b;
  const NodeId o1 = b.add(10), o2 = b.add(20), v = b.add(30, Tier::kTransit);
  b.provider(o1, v);
  b.provider(o2, v);

  class PreferSecond final : public PolicyEngine {
   public:
    explicit PreferSecond(const AsGraph& g) : base_(g) {}
    bool allow_export(const RouteSource& src, bool from_is_origin,
                      NodeId from, const topo::Neighbor& to,
                      std::uint8_t& prepend) const override {
      return base_.allow_export(src, from_is_origin, from, to, prepend);
    }
    bool allow_import(const RouteSource& src, NodeId node) const override {
      return base_.allow_import(src, node);
    }
    std::uint32_t selection_rank(const RouteSource&,
                                 std::uint16_t source_index) const override {
      return source_index == 1 ? 0 : 1;
    }
    bool leaks(NodeId node) const override { return base_.leaks(node); }

   private:
    GaoRexfordEngine base_;
  };

  Propagator prop(b.g);
  const std::vector<RouteSource> sources{{o1, nullptr, false},
                                         {o2, nullptr, false}};
  RouteTable t;
  prop.compute(sources, GaoRexfordEngine(b.g), t);
  EXPECT_EQ(t.source[v], 0) << "default tie-break: lower neighbor ASN";
  prop.compute(sources, PreferSecond(b.g), t);
  EXPECT_EQ(t.source[v], 1) << "rank outranks the neighbor-ASN tie-break";
}

// --- era anchors -----------------------------------------------------------

TEST(Scenario, EraSecurityAnchorsFollowDeployment) {
  EXPECT_DOUBLE_EQ(topo::era_params_v4(2004.0, 1.0).rov_adoption, 0.0);
  EXPECT_DOUBLE_EQ(topo::era_params_v4(2008.0, 1.0).roa_coverage, 0.0);
  EXPECT_DOUBLE_EQ(topo::era_params_v4(2016.0, 1.0).rov_adoption, 0.03);
  EXPECT_DOUBLE_EQ(topo::era_params_v4(2024.75, 1.0).rov_adoption, 0.33);
  EXPECT_DOUBLE_EQ(topo::era_params_v4(2024.75, 1.0).roa_coverage, 0.52);
  // Misconfiguration share shrinks once tooling matured.
  EXPECT_GT(topo::era_params_v4(2013.0, 1.0).roa_misconfig,
            topo::era_params_v4(2024.0, 1.0).roa_misconfig);
  // v6 trails v4 slightly on adoption but covers more space by 2024.
  EXPECT_DOUBLE_EQ(topo::era_params_v6(2011.0, 1.0).rov_adoption, 0.0);
  EXPECT_GT(topo::era_params_v6(2024.75, 1.0).roa_coverage,
            topo::era_params_v4(2024.75, 1.0).roa_coverage);
}

// --- simulator end-to-end --------------------------------------------------

Simulator make_sim(SimOptions opt, std::uint64_t seed = 5,
                   double year = 2020.0, double scale = 0.02) {
  opt.seed = seed;
  return Simulator(
      topo::generate_topology(topo::era_params_v4(year, scale), seed), opt);
}

bool snapshots_equal(const bgp::Snapshot& a, const bgp::Snapshot& b) {
  if (a.peers.size() != b.peers.size()) return false;
  for (std::size_t i = 0; i < a.peers.size(); ++i) {
    if (!(a.peers[i].peer == b.peers[i].peer)) return false;
    if (a.peers[i].records != b.peers[i].records) return false;
  }
  return true;
}

/// Origin ASN (last hop) of a record's path, or 0 for an empty path.
net::Asn record_origin(const bgp::Dataset& ds, const bgp::RibRecord& r) {
  const auto hops = ds.paths.get(r.path).flat();
  return hops.empty() ? 0 : hops.back();
}

TEST(Scenario, SimulatorIncidentsScheduleInsideTheCampaignWindow) {
  SimOptions opt;
  opt.scenario.origin_hijacks = 2;
  opt.scenario.subprefix_hijacks = 1;
  opt.scenario.route_leaks = 1;
  auto sim = make_sim(opt);
  ASSERT_FALSE(sim.incidents().empty());
  for (const auto& inc : sim.incidents()) {
    EXPECT_GE(inc.start, opt.scenario.first_start);
    EXPECT_LT(inc.start, opt.scenario.first_start + opt.scenario.start_spread);
    EXPECT_GT(inc.end, 8 * kHour) << "still active at the 8h capture";
    EXPECT_LT(inc.end, kWeek) << "resolved before the 1w capture";
    if (inc.kind == ScenarioKind::kSubPrefixHijack) {
      EXPECT_NE(inc.overlay_unit, UINT32_MAX);
      EXPECT_TRUE(sim.unit_suppressed(inc.overlay_unit));
    }
  }
}

TEST(Scenario, FirstCaptureIsUntouchedByScheduledIncidents) {
  SimOptions opt;
  opt.scenario.origin_hijacks = 2;
  opt.scenario.subprefix_hijacks = 1;
  opt.scenario.route_leaks = 1;
  auto sim = make_sim(opt);
  auto base = make_sim(SimOptions{});
  sim.capture();
  base.capture();
  EXPECT_TRUE(snapshots_equal(sim.dataset().snapshots[0],
                              base.dataset().snapshots[0]))
      << "incidents start after t0 and must not perturb the first capture";
}

TEST(Scenario, OriginHijackIsVisibleMidCampaignAndResolves) {
  SimOptions opt;
  opt.weekly_churn = false;  // isolate the scenario machinery
  opt.scenario.origin_hijacks = 3;
  auto sim = make_sim(opt);
  ASSERT_FALSE(sim.incidents().empty());

  sim.capture();               // t0: clean
  sim.advance_to(8 * kHour);   // all incidents active
  sim.capture();
  sim.advance_to(kWeek);       // all incidents resolved
  sim.capture();
  const auto& ds = sim.dataset();

  std::size_t hijacked_records_mid = 0, hijacked_records_end = 0;
  for (const auto& inc : sim.incidents()) {
    const net::Asn attacker = sim.topology().graph.node(inc.actor).asn;
    std::unordered_set<bgp::PrefixId> victim_prefixes;
    for (auto p : sim.policies().units[inc.victim_unit].prefixes) {
      victim_prefixes.insert(p);
    }
    auto count = [&](const bgp::Snapshot& snap) {
      std::size_t n = 0;
      for (const auto& feed : snap.peers) {
        for (const auto& r : feed.records) {
          if (victim_prefixes.count(r.prefix) &&
              record_origin(ds, r) == attacker) {
            ++n;
          }
        }
      }
      return n;
    };
    EXPECT_EQ(count(ds.snapshots[0]), 0u) << "no hijack before start";
    hijacked_records_mid += count(ds.snapshots[1]);
    hijacked_records_end += count(ds.snapshots[2]);
  }
  EXPECT_GT(hijacked_records_mid, 0u)
      << "some vantage point selects the hijacker mid-campaign";
  EXPECT_EQ(hijacked_records_end, 0u) << "hijacks withdraw on resolution";
  // With churn off, the post-resolution table is byte-identical to t0.
  EXPECT_TRUE(snapshots_equal(ds.snapshots[0], ds.snapshots[2]));
}

TEST(Scenario, SubPrefixOverlayAppearsOnlyWhileActive) {
  SimOptions opt;
  opt.weekly_churn = false;
  opt.scenario.subprefix_hijacks = 2;
  auto sim = make_sim(opt);
  ASSERT_FALSE(sim.incidents().empty());

  sim.capture();
  sim.advance_to(8 * kHour);
  sim.capture();
  sim.advance_to(kWeek);
  sim.capture();
  const auto& ds = sim.dataset();

  for (const auto& inc : sim.incidents()) {
    ASSERT_EQ(inc.kind, ScenarioKind::kSubPrefixHijack);
    const auto overlay_pid = static_cast<bgp::PrefixId>(
        sim.policies().units[inc.overlay_unit].prefixes[0]);
    // The overlay prefix is a strict more-specific of the victim's.
    const auto victim_pid = sim.policies().units[inc.victim_unit].prefixes[0];
    EXPECT_TRUE(sim.policies().all_prefixes[victim_pid].contains(
        sim.policies().all_prefixes[overlay_pid]));

    auto seen = [&](const bgp::Snapshot& snap) {
      for (const auto& feed : snap.peers) {
        for (const auto& r : feed.records) {
          if (r.prefix == overlay_pid) return true;
        }
      }
      return false;
    };
    EXPECT_FALSE(seen(ds.snapshots[0])) << "suppressed before start";
    EXPECT_TRUE(seen(ds.snapshots[1])) << "announced while active";
    EXPECT_FALSE(seen(ds.snapshots[2])) << "withdrawn after resolution";
  }
}

TEST(Scenario, RouteLeakPicksAffectedUnitsAndReroutesThem) {
  SimOptions opt;
  opt.weekly_churn = false;
  opt.scenario.route_leaks = 2;
  auto sim = make_sim(opt);
  ASSERT_FALSE(sim.incidents().empty());

  sim.capture();
  sim.advance_to(8 * kHour);
  sim.capture();
  const auto& ds = sim.dataset();

  std::size_t affected_total = 0, moved = 0;
  for (const auto& inc : sim.incidents()) {
    affected_total += inc.affected.size();
    EXPECT_LE(inc.affected.size(),
              static_cast<std::size_t>(opt.scenario.leak_units_max));
    const net::Asn leaker = sim.topology().graph.node(inc.actor).asn;
    for (UnitId u : inc.affected) {
      // A leaked route pulls some session's best path through the leaker
      // in customer position — paths that did not exist at t0.
      for (auto pid : sim.policies().units[u].prefixes) {
        for (std::size_t vp = 0; vp < ds.snapshots[0].peers.size(); ++vp) {
          auto find = [&](const bgp::Snapshot& s) -> const bgp::RibRecord* {
            for (const auto& r : s.peers[vp].records) {
              if (r.prefix == pid) return &r;
            }
            return nullptr;
          };
          const auto* r0 = find(ds.snapshots[0]);
          const auto* r1 = find(ds.snapshots[1]);
          if (r0 && r1 && !(*r0 == *r1)) ++moved;
          (void)leaker;
        }
      }
    }
  }
  EXPECT_GT(affected_total, 0u) << "transit leakers sit on some best paths";
  EXPECT_GT(moved, 0u) << "leaks re-route at least one recorded path";
}

TEST(Scenario, RovDeploymentDropsInvalidRoutesAtT0) {
  SimOptions opt;
  opt.scenario.rov = true;
  opt.scenario.rov_adoption_override = 0.5;
  opt.scenario.roa_coverage_override = 0.5;
  auto sim = make_sim(opt, 5, 2024.75);
  auto base = make_sim(SimOptions{}, 5, 2024.75);
  EXPECT_GT(sim.rov().validating_count(), 0u);
  EXPECT_GT(sim.rov().roas().size(), 0u);

  sim.capture();
  base.capture();
  auto records = [](const bgp::Snapshot& s) {
    std::size_t n = 0;
    for (const auto& f : s.peers) n += f.records.size();
    return n;
  };
  const std::size_t with_rov = records(sim.dataset().snapshots[0]);
  const std::size_t without = records(base.dataset().snapshots[0]);
  EXPECT_LT(with_rov, without)
      << "validating sessions drop ROV-invalid (misconfigured) units";
}

TEST(Scenario, RovAdoptionWavesLiftValidatingCount) {
  SimOptions opt;
  opt.weekly_churn = false;
  opt.scenario.rov = true;
  opt.scenario.rov_adoption_override = 0.1;
  opt.scenario.roa_coverage_override = 0.4;
  opt.scenario.rov_adopt_waves = 2;
  auto sim = make_sim(opt, 5, 2024.75);

  std::size_t waves = 0;
  for (const auto& inc : sim.incidents()) {
    if (inc.kind != ScenarioKind::kRovAdopt) continue;
    ++waves;
    EXPECT_FALSE(inc.adopter_nodes.empty());
    EXPECT_EQ(inc.end, 0u) << "adoption does not roll back";
  }
  ASSERT_EQ(waves, 2u);

  const std::size_t before = sim.rov().validating_count();
  sim.advance_to(kWeek);
  EXPECT_GT(sim.rov().validating_count(), before);
}

TEST(Scenario, EmitUpdatesPreviewsIncidentsWithoutMutatingState) {
  SimOptions opt;
  opt.weekly_churn = false;
  opt.scenario.origin_hijacks = 2;
  opt.scenario.subprefix_hijacks = 1;
  auto sim = make_sim(opt);
  ASSERT_FALSE(sim.incidents().empty());

  sim.capture();
  const std::size_t updates_before = sim.dataset().updates.size();
  sim.emit_updates(8 * kHour);  // window covers every incident start
  EXPECT_GT(sim.dataset().updates.size(), updates_before)
      << "incident starts appear as announce bursts in the stream";
  sim.capture();  // still at t0: the preview must have been fully reverted
  EXPECT_TRUE(snapshots_equal(sim.dataset().snapshots[0],
                              sim.dataset().snapshots[1]))
      << "previewing scenario transitions must not leak into the tables";

  // The burst timestamps line up with scheduled incident starts.
  bool found_start_burst = false;
  for (const auto& inc : sim.incidents()) {
    for (std::size_t i = updates_before; i < sim.dataset().updates.size();
         ++i) {
      const auto ts = sim.dataset().updates[i].timestamp;
      if (ts >= inc.start && ts < inc.start + kMinute) found_start_burst = true;
    }
  }
  EXPECT_TRUE(found_start_burst);
}

TEST(Scenario, DisabledScenarioLeavesSchedulingUntouched) {
  auto sim = make_sim(SimOptions{});
  EXPECT_TRUE(sim.incidents().empty());
  EXPECT_EQ(sim.rov().validating_count(), 0u);
  EXPECT_EQ(sim.rov().validating_fraction(), 0.0);
}

}  // namespace
}  // namespace bgpatoms::routing
