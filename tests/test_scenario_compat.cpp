// Byte-identity pin for the policy-engine refactor (ISSUE 9).
//
// The scenario engine (ROV, hijacks, route leaks) must be a strict
// superset of the classic Gao-Rexford pipeline: with every scenario
// disabled, registered experiments and raw simulator campaigns must
// produce byte-identical output to the pre-refactor code. These goldens
// were captured from the seed tree immediately before the refactor; any
// change here means the default path is no longer bit-stable and is a
// bug, not a test to update casually.
//
// Two layers are pinned:
//   * SimulatorArchiveDigest — FNV-1a over bgp::write_archive() bytes of
//     fixed campaigns (v4 2004, v4 2024 with updates, v6 2014): pins the
//     propagation + simulator layer directly.
//   * BenchReportDigest — FNV-1a over the canonicalized bga_bench JSON
//     report of a representative experiment subset at scale 0.05: pins
//     the whole topo -> routing -> analysis -> report stack.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "bench/experiments/experiments.h"
#include "bgp/archive.h"
#include "report/experiment.h"
#include "report/json.h"
#include "routing/simulator.h"
#include "topo/era.h"
#include "topo/topology.h"

namespace bgpatoms {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t h = kFnvOffset) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  return fnv1a(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                                bytes.size()));
}

// Drops run-volatile fields (timings, thread counts, cache hit stats)
// so the digest covers only the scientific payload.
report::json::Value canonicalize(const report::json::Value& v) {
  using report::json::Value;
  if (v.is_object()) {
    report::json::Object out;
    for (const auto& [key, value] : v.as_object()) {
      if (key == "wall_seconds" || key == "threads" || key == "cache") {
        continue;
      }
      out.emplace_back(key, canonicalize(value));
    }
    return Value(std::move(out));
  }
  if (v.is_array()) {
    report::json::Array out;
    for (const auto& item : v.as_array()) out.push_back(canonicalize(item));
    return Value(std::move(out));
  }
  return v;
}

std::uint64_t campaign_digest(const topo::EraParams& era, std::uint64_t seed,
                              bool with_updates) {
  routing::SimOptions opt;
  opt.seed = seed;
  routing::Simulator sim(topo::generate_topology(era, seed), opt);
  sim.capture();
  if (with_updates) sim.emit_updates(4 * routing::kHour);
  sim.advance_to(8 * routing::kHour);
  sim.capture();
  sim.advance_to(24 * routing::kHour);
  sim.capture();
  sim.advance_to(7 * routing::kDay);
  sim.capture();
  return fnv1a(bgp::write_archive(sim.dataset()));
}

// Captured from the pre-refactor seed (see file comment). A mismatch
// means the scenarios-disabled path changed simulator output bytes.
TEST(ScenarioCompat, SimulatorArchiveDigest) {
  EXPECT_EQ(campaign_digest(topo::era_params_v4(2004.0, 0.02), 7, false),
            4644960436340809974ull);
  EXPECT_EQ(campaign_digest(topo::era_params_v4(2024.75, 0.02), 11, true),
            7611315610023903196ull);
  EXPECT_EQ(campaign_digest(topo::era_params_v6(2014.0, 0.03), 5, true),
            2113291365971392245ull);
}

// Canonicalized bga_bench --json digest over a subset spanning general
// stats, stability, update correlation, a year sweep, MOAS handling and
// the 2002 reproduction. A mismatch means a registered experiment's
// output changed with scenarios disabled.
TEST(ScenarioCompat, BenchReportDigest) {
  report::Registry registry;
  bench::register_table1(registry);
  bench::register_table3(registry);
  bench::register_table6(registry);
  bench::register_fig03(registry);
  bench::register_fig05(registry);
  bench::register_repro2002(registry);

  report::RunOptions options;
  options.scale_multiplier = 0.05;
  options.threads = 1;
  const auto report = report::run_experiments(registry.all(), options);
  const auto canonical = canonicalize(report::to_json(report)).serialize();
  EXPECT_EQ(fnv1a(canonical), 1543005841454114366ull)
      << canonical.substr(0, 2000);
}

}  // namespace
}  // namespace bgpatoms
