// bga_serve protocol + socket loop: ServeState::handle over every op and
// error path (pure-function determinism included), and a live Server on
// an ephemeral loopback port — framed requests for each query type, the
// HTTP /metrics document validated against bgpatoms-trace/1, idle
// persistence, and a clean shutdown-op exit. The socket smoke runs under
// the serve_smoke ctest label (tools/ci_check.sh) and the worker loop
// under tsan.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/atoms.h"
#include "query/serve.h"
#include "query/server.h"
#include "report/json.h"
#include "report/trace.h"
#include "testutil.h"

namespace bgpatoms::query {
namespace {

using report::json::Value;
using test::DatasetBuilder;

/// Two snapshots: {10.0, 10.1} + {10.2} at t=0; the pair splits at t=100.
ServeState make_state() {
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 1")
      .route("10.1.0.0/16", "100 1")
      .route("10.2.0.0/16", "100 2");
  b.peer(200)
      .route("10.0.0.0/16", "200 1")
      .route("10.1.0.0/16", "200 1")
      .route("10.2.0.0/16", "200 2");
  b.snapshot(100);
  b.peer(100)
      .route("10.0.0.0/16", "100 1")
      .route("10.1.0.0/16", "100 9 1")
      .route("10.2.0.0/16", "100 2");
  b.peer(200)
      .route("10.0.0.0/16", "200 1")
      .route("10.1.0.0/16", "200 1")
      .route("10.2.0.0/16", "200 2");

  Timeline timeline;
  for (std::size_t i = 0; i < 2; ++i) {
    const auto snap = sanitize(b.dataset(), i, test::lax_config());
    timeline.add("t" + std::to_string(i),
                 std::make_shared<AtomIndex>(
                     AtomIndex::build(core::compute_atoms(snap))));
  }
  return ServeState{std::move(timeline)};
}

Value reply_for(const ServeState& state, const std::string& request) {
  return Value::parse(state.handle(request).body);
}

bool ok(const Value& reply) {
  const Value* v = reply.find("ok");
  return v != nullptr && v->is_bool() && v->as_bool();
}

std::string error_of(const Value& reply) {
  const Value* v = reply.find("error");
  return v != nullptr && v->is_string() ? v->as_string() : "";
}

TEST(ServeState, EmptyTimelineIsRejected) {
  EXPECT_THROW(ServeState{Timeline{}}, std::invalid_argument);
}

TEST(ServeState, LookupResolvesThroughTheIndex) {
  const ServeState state = make_state();
  // Default snapshot is the newest (t1, where the pair has split).
  const auto reply = reply_for(state, R"({"op":"lookup","q":"10.0.0.9"})");
  ASSERT_TRUE(ok(reply));
  EXPECT_EQ(reply.find("label")->as_string(), "t1");
  EXPECT_EQ(reply.find("matched")->as_string(), "10.0.0.0/16");
  EXPECT_EQ(reply.find("size")->as_uint64(), 1u);
  EXPECT_EQ(reply.find("origin")->as_uint64(), 1u);
  ASSERT_NE(reply.find("prefixes"), nullptr);
  EXPECT_EQ(reply.find("prefixes")->as_array().size(), 1u);
  EXPECT_EQ(reply.find("paths")->as_array().size(), 2u);

  // Pinned snapshot 0: the atom still spans both prefixes.
  const auto at0 =
      reply_for(state, R"({"op":"lookup","q":"10.0.0.9","snapshot":0})");
  ASSERT_TRUE(ok(at0));
  EXPECT_EQ(at0.find("label")->as_string(), "t0");
  EXPECT_EQ(at0.find("size")->as_uint64(), 2u);

  // A miss is ok:true, found:false.
  const auto miss = reply_for(state, R"({"op":"lookup","q":"192.0.2.1"})");
  ASSERT_TRUE(ok(miss));
  EXPECT_FALSE(miss.find("found")->as_bool());
}

TEST(ServeState, EquivComparesAtomIds) {
  const ServeState state = make_state();
  const auto same = reply_for(
      state, R"({"op":"equiv","a":"10.0.0.1","b":"10.1.0.1","snapshot":0})");
  ASSERT_TRUE(ok(same));
  EXPECT_TRUE(same.find("equivalent")->as_bool());

  // After the split (newest snapshot) the same pair is not equivalent.
  const auto split =
      reply_for(state, R"({"op":"equiv","a":"10.0.0.1","b":"10.1.0.1"})");
  ASSERT_TRUE(ok(split));
  EXPECT_FALSE(split.find("equivalent")->as_bool());

  // A missing side is never equivalent.
  const auto miss =
      reply_for(state, R"({"op":"equiv","a":"10.0.0.1","b":"192.0.2.1"})");
  ASSERT_TRUE(ok(miss));
  EXPECT_FALSE(miss.find("equivalent")->as_bool());
}

TEST(ServeState, HistoryWalksTheTimeline) {
  const ServeState state = make_state();
  const auto reply = reply_for(state, R"({"op":"history","q":"10.2.0.9"})");
  ASSERT_TRUE(ok(reply));
  const auto& entries = reply.find("entries")->as_array();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].find("present")->as_bool());
  EXPECT_FALSE(entries[0].find("same_as_previous")->as_bool());
  EXPECT_TRUE(entries[1].find("present")->as_bool());
  EXPECT_TRUE(entries[1].find("same_as_previous")->as_bool());
  EXPECT_EQ(entries[1].find("label")->as_string(), "t1");
}

TEST(ServeState, StatsReportsEverySnapshot) {
  const ServeState state = make_state();
  const auto reply = reply_for(state, R"({"op":"stats"})");
  ASSERT_TRUE(ok(reply));
  const auto& snaps = reply.find("snapshots")->as_array();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].find("prefixes")->as_uint64(), 3u);
  EXPECT_EQ(snaps[0].find("atoms")->as_uint64(), 2u);
  EXPECT_EQ(snaps[1].find("atoms")->as_uint64(), 3u);
  EXPECT_NE(snaps[0].find("fingerprint")->as_uint64(),
            snaps[1].find("fingerprint")->as_uint64());
}

TEST(ServeState, ErrorPathsKeepTheConnectionUsable) {
  const ServeState state = make_state();
  const auto bad_json = reply_for(state, "{not json");
  EXPECT_FALSE(ok(bad_json));
  EXPECT_NE(error_of(bad_json), "");

  const auto no_op = reply_for(state, R"({"q":"10.0.0.1"})");
  EXPECT_FALSE(ok(no_op));
  EXPECT_NE(error_of(no_op).find("\"op\""), std::string::npos);

  const auto bad_op = reply_for(state, R"({"op":"frobnicate"})");
  EXPECT_FALSE(ok(bad_op));
  EXPECT_NE(error_of(bad_op).find("unknown op"), std::string::npos);

  const auto bad_prefix = reply_for(state, R"({"op":"lookup","q":"10.0/99"})");
  EXPECT_FALSE(ok(bad_prefix));
  EXPECT_NE(error_of(bad_prefix).find("malformed prefix"), std::string::npos);

  const auto bad_snap =
      reply_for(state, R"({"op":"lookup","q":"10.0.0.1","snapshot":7})");
  EXPECT_FALSE(ok(bad_snap));
  EXPECT_NE(error_of(bad_snap).find("out of range"), std::string::npos);

  // The state still answers a well-formed request afterwards.
  EXPECT_TRUE(ok(reply_for(state, R"({"op":"stats"})")));
}

TEST(ServeState, RepliesAreDeterministic) {
  const ServeState state = make_state();
  const std::string request = R"({"op":"lookup","q":"10.1.0.1"})";
  const std::string first = state.handle(request).body;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(state.handle(request).body, first);
  }
}

TEST(ServeState, FrameIsLittleEndianLengthPrefixed) {
  const std::string framed = frame("abc");
  ASSERT_EQ(framed.size(), 7u);
  EXPECT_EQ(framed[0], 3);
  EXPECT_EQ(framed[1], 0);
  EXPECT_EQ(framed[2], 0);
  EXPECT_EQ(framed[3], 0);
  EXPECT_EQ(framed.substr(4), "abc");
}

TEST(ServeState, MetricsDocumentValidatesAsTrace) {
  const ServeState state = make_state();
  (void)state.handle(R"({"op":"stats"})");
  const auto doc = Value::parse(state.metrics_json(2));
  EXPECT_EQ(report::validate_trace(doc), "");
}

// ---------------------------------------------------------------- socket

/// Minimal blocking loopback client for the framed protocol.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof addr) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void send_raw(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Sends one framed request and decodes the framed JSON reply.
  Value ask(const std::string& request) {
    send_raw(frame(request));
    unsigned char head[4];
    read_exact(head, 4);
    const std::size_t n = static_cast<std::size_t>(head[0]) |
                          static_cast<std::size_t>(head[1]) << 8 |
                          static_cast<std::size_t>(head[2]) << 16 |
                          static_cast<std::size_t>(head[3]) << 24;
    std::string body(n, '\0');
    read_exact(body.data(), n);
    return Value::parse(body);
  }

  /// Reads until EOF (the /metrics HTTP path closes after one response).
  std::string drain() {
    std::string out;
    char buf[4096];
    ssize_t got = 0;
    while ((got = ::recv(fd_, buf, sizeof buf, 0)) > 0) {
      out.append(buf, static_cast<std::size_t>(got));
    }
    return out;
  }

 private:
  void read_exact(void* buf, std::size_t n) {
    auto* p = static_cast<char*>(buf);
    while (n > 0) {
      const ssize_t got = ::recv(fd_, p, n, 0);
      ASSERT_GT(got, 0);
      p += got;
      n -= static_cast<std::size_t>(got);
    }
  }

  int fd_ = -1;
  bool connected_ = false;
};

TEST(Server, ServesEveryOpOverTheWireAndShutsDownCleanly) {
  const ServeState state = make_state();
  ServerOptions options;
  options.threads = 2;
  options.poll_interval_ms = 50;
  auto server = std::make_unique<Server>(state, options);
  const int port = server->port();
  ASSERT_GT(port, 0);
  std::thread serving([&] { server->run(); });

  {
    Client client(port);
    ASSERT_TRUE(client.connected());

    // Each query type over one persistent framed connection; the served
    // bytes must equal an in-process handle() of the same request.
    for (const char* request :
         {R"({"op":"lookup","q":"10.0.0.9"})",
          R"({"op":"equiv","a":"10.0.0.1","b":"10.1.0.1","snapshot":0})",
          R"({"op":"history","q":"10.2.0.9"})", R"({"op":"stats"})",
          R"({"op":"frobnicate"})"}) {
      const Value served = client.ask(request);
      EXPECT_EQ(served.serialize(), Value::parse(state.handle(request).body)
                                        .serialize())
          << request;
    }

    // The /metrics HTTP surface shares the port and emits a valid
    // bgpatoms-trace/1 document.
    Client http(port);
    ASSERT_TRUE(http.connected());
    http.send_raw("GET /metrics HTTP/1.0\r\n\r\n");
    const std::string response = http.drain();
    ASSERT_NE(response.find("200 OK"), std::string::npos);
    const auto body_at = response.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    const auto doc = Value::parse(response.substr(body_at + 4));
    EXPECT_EQ(report::validate_trace(doc), "");
    const Value* counters = doc.find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(counters->find("serve.requests"), nullptr);
    EXPECT_GE(counters->find("serve.requests")->as_uint64(), 5u);

    // The first framed connection is still usable after the HTTP one.
    EXPECT_TRUE(ok(client.ask(R"({"op":"stats"})")));

    // Shutdown is acknowledged before the server stops.
    const Value bye = client.ask(R"({"op":"shutdown"})");
    EXPECT_TRUE(ok(bye));
  }
  serving.join();  // run() returns: clean shutdown

  // Once the server is destroyed the listening socket is gone: new
  // connections are refused. (While the object lives the kernel still
  // queues connects on the open listen fd, so the check is post-dtor.)
  server.reset();
  Client late(port);
  EXPECT_FALSE(late.connected());
}

TEST(Server, OversizedFrameDropsTheConnectionOnly) {
  const ServeState state = make_state();
  ServerOptions options;
  options.threads = 2;
  options.poll_interval_ms = 50;
  options.max_frame = 64;
  Server server(state, options);
  std::thread serving([&] { server.run(); });

  {
    Client big(server.port());
    ASSERT_TRUE(big.connected());
    // Header announces a frame beyond max_frame: the server must drop
    // the connection without reading the payload.
    big.send_raw(std::string("\xff\xff\x00\x00", 4));
    EXPECT_EQ(big.drain(), "");

    Client fine(server.port());
    ASSERT_TRUE(fine.connected());
    EXPECT_TRUE(ok(fine.ask(R"({"op":"stats"})")));
    EXPECT_TRUE(ok(fine.ask(R"({"op":"shutdown"})")));
  }
  serving.join();
}

}  // namespace
}  // namespace bgpatoms::query
