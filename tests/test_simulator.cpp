// Tests for the measurement-campaign simulator: capture shape, fault
// injection, determinism, events, and update emission.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "routing/simulator.h"

namespace bgpatoms::routing {
namespace {

Simulator make_sim(double year = 2012.0, double scale = 0.02,
                   std::uint64_t seed = 5, SimOptions opt = {}) {
  opt.seed = seed;
  return Simulator(
      topo::generate_topology(topo::era_params_v4(year, scale), seed), opt);
}

TEST(Simulator, CaptureProducesOneFeedPerVantagePoint) {
  auto sim = make_sim();
  const auto idx = sim.capture();
  EXPECT_EQ(idx, 0u);
  const auto& snap = sim.dataset().snapshots.at(0);
  EXPECT_EQ(snap.peers.size(), sim.topology().vantage_points.size());
  EXPECT_GT(bgp::Dataset::record_count(snap), 0u);
}

TEST(Simulator, PeerIdentitiesAreStableAndDistinct) {
  auto sim = make_sim();
  sim.capture();
  sim.advance_to(8 * kHour);
  sim.capture();
  const auto& ds = sim.dataset();
  std::unordered_set<std::uint32_t> addresses;
  for (std::size_t i = 0; i < ds.snapshots[0].peers.size(); ++i) {
    const auto& p0 = ds.snapshots[0].peers[i].peer;
    const auto& p1 = ds.snapshots[1].peers[i].peer;
    EXPECT_EQ(p0, p1) << "peer order must be stable across snapshots";
    EXPECT_TRUE(addresses.insert(p0.address.v4_value()).second);
  }
}

TEST(Simulator, RecordsSortedAndUniquePerPeer) {
  auto sim = make_sim();
  sim.capture();
  for (const auto& feed : sim.dataset().snapshots[0].peers) {
    if (sim.topology().vantage_points.empty()) break;
    // Find this VP's fault flags (order matches vantage_points).
    for (std::size_t i = 1; i < feed.records.size(); ++i) {
      EXPECT_LE(feed.records[i - 1].prefix, feed.records[i].prefix);
    }
  }
}

TEST(Simulator, DeterministicCapture) {
  auto a = make_sim(2012.0, 0.02, 9);
  auto b = make_sim(2012.0, 0.02, 9);
  a.capture();
  b.capture();
  const auto& sa = a.dataset().snapshots[0];
  const auto& sb = b.dataset().snapshots[0];
  ASSERT_EQ(sa.peers.size(), sb.peers.size());
  for (std::size_t i = 0; i < sa.peers.size(); ++i) {
    EXPECT_EQ(sa.peers[i].records.size(), sb.peers[i].records.size());
  }
  EXPECT_EQ(bgp::Dataset::record_count(sa), bgp::Dataset::record_count(sb));
}

TEST(Simulator, PartialFeedsShareFewerPrefixes) {
  auto sim = make_sim(2024.0, 0.02);
  sim.capture();
  const auto& vps = sim.topology().vantage_points;
  const auto& snap = sim.dataset().snapshots[0];
  std::size_t max_records = 0;
  for (const auto& feed : snap.peers) {
    max_records = std::max(max_records, feed.records.size());
  }
  for (std::size_t i = 0; i < vps.size(); ++i) {
    if (vps[i].share_fraction < 0.8) {
      EXPECT_LT(snap.peers[i].records.size(), max_records * 9 / 10)
          << "partial feed " << i << " shares a full table";
    }
  }
}

TEST(Simulator, AddPathBrokenPeersEmitMalformedRecords) {
  auto sim = make_sim(2022.0, 0.02);  // era with ADD-PATH breakage
  sim.capture();
  const auto& vps = sim.topology().vantage_points;
  const auto& snap = sim.dataset().snapshots[0];
  bool any_broken = false;
  for (std::size_t i = 0; i < vps.size(); ++i) {
    std::size_t corrupt = 0;
    for (const auto& rec : snap.peers[i].records) {
      corrupt += bgp::is_addpath_artifact(rec.status);
    }
    if (vps[i].addpath_broken) {
      any_broken = true;
      EXPECT_GT(corrupt, snap.peers[i].records.size() / 50)
          << "broken peer " << i << " looks clean";
    } else {
      EXPECT_EQ(corrupt, 0u) << "healthy peer " << i << " emits garbage";
    }
  }
  EXPECT_TRUE(any_broken);
}

TEST(Simulator, PrivateAsnInjectorRewritesPaths) {
  auto sim = make_sim(2021.5, 0.02);  // AS25885-style window
  sim.capture();
  const auto& vps = sim.topology().vantage_points;
  const auto& ds = sim.dataset();
  const auto& snap = ds.snapshots[0];
  bool found_injector = false;
  for (std::size_t i = 0; i < vps.size(); ++i) {
    std::size_t with_private = 0;
    for (const auto& rec : snap.peers[i].records) {
      const auto hops = ds.paths.get(rec.path).flat();
      for (std::size_t h = 1; h < hops.size(); ++h) {
        if (hops[h] == 65000) {
          ++with_private;
          break;
        }
      }
    }
    if (vps[i].private_asn_injector) {
      found_injector = true;
      EXPECT_GT(with_private, snap.peers[i].records.size() / 4);
    } else {
      EXPECT_EQ(with_private, 0u);
    }
  }
  EXPECT_TRUE(found_injector);
}

TEST(Simulator, DuplicateEmitterRepeatsPrefixes) {
  auto sim = make_sim(2022.0, 0.02);
  sim.capture();
  const auto& vps = sim.topology().vantage_points;
  const auto& snap = sim.dataset().snapshots[0];
  for (std::size_t i = 0; i < vps.size(); ++i) {
    std::unordered_set<bgp::PrefixId> seen;
    std::size_t dup = 0;
    for (const auto& rec : snap.peers[i].records) {
      if (!seen.insert(rec.prefix).second) ++dup;
    }
    if (vps[i].duplicate_emitter) {
      EXPECT_GT(dup, snap.peers[i].records.size() / 20);
    }
  }
}

TEST(Simulator, WeeklyChurnAppliesEventsInOrder) {
  SimOptions opt;
  opt.weekly_churn = true;
  auto sim = make_sim(2024.0, 0.02, 5, opt);
  sim.capture();
  const auto before = sim.events_applied();
  EXPECT_EQ(before, 0u);
  sim.advance_to(8 * kHour);
  const auto at8h = sim.events_applied();
  EXPECT_GT(at8h, 0u);
  sim.advance_to(kWeek);
  EXPECT_GT(sim.events_applied(), at8h);
}

TEST(Simulator, EventsChangeCapturedTables) {
  SimOptions opt;
  opt.weekly_churn = true;
  auto sim = make_sim(2024.0, 0.02, 5, opt);
  sim.capture();
  sim.advance_to(kWeek);
  sim.capture();
  ASSERT_GT(sim.events_applied(), 0u);
  const auto& ds = sim.dataset();
  // At least one peer's table content must differ between the snapshots.
  bool any_diff = false;
  for (std::size_t i = 0;
       i < ds.snapshots[0].peers.size() && !any_diff; ++i) {
    any_diff = ds.snapshots[0].peers[i].records !=
               ds.snapshots[1].peers[i].records;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Simulator, AdvanceBackwardsIsRejected) {
  auto sim = make_sim();
  sim.advance_to(kHour);
  EXPECT_EQ(sim.now(), kHour);
#ifndef NDEBUG
  EXPECT_DEATH(sim.advance_to(0), "");
#endif
}

TEST(Simulator, UpdatesAreTimestampSortedWithinWindow) {
  auto sim = make_sim(2012.0, 0.02);
  sim.capture();
  sim.emit_updates(4 * kHour);
  const auto& updates = sim.dataset().updates;
  ASSERT_GT(updates.size(), 0u);
  for (std::size_t i = 1; i < updates.size(); ++i) {
    EXPECT_LE(updates[i - 1].timestamp, updates[i].timestamp);
  }
  const auto t0 = sim.dataset().snapshots[0].timestamp;
  for (const auto& u : updates) {
    EXPECT_GE(u.timestamp, t0);
    // Chunk trains may spill a few seconds past the nominal window.
    EXPECT_LE(u.timestamp, t0 + 4 * kHour + 60);
  }
}

TEST(Simulator, UpdatesReferenceValidIds) {
  auto sim = make_sim(2012.0, 0.02);
  sim.capture();
  sim.emit_updates(kHour);
  const auto& ds = sim.dataset();
  for (const auto& u : ds.updates) {
    EXPECT_LT(u.peer, ds.snapshots[0].peers.size());
    EXPECT_LT(u.collector, ds.collectors.size());
    EXPECT_LT(u.path, ds.paths.size());
    for (auto p : u.announced) EXPECT_LT(p, ds.prefixes.size());
    for (auto p : u.withdrawn) EXPECT_LT(p, ds.prefixes.size());
  }
}

TEST(Simulator, DropSnapshotKeepsOthers) {
  auto sim = make_sim();
  sim.capture();
  sim.advance_to(kDay);
  sim.capture();
  sim.advance_to(2 * kDay);
  sim.capture();
  const auto t1 = sim.dataset().snapshots[1].timestamp;
  sim.drop_snapshot(0);
  ASSERT_EQ(sim.dataset().snapshots.size(), 2u);
  EXPECT_EQ(sim.dataset().snapshots[0].timestamp, t1);
}

TEST(Simulator, DropSnapshotMiddleAndLast) {
  auto sim = make_sim();
  sim.capture();
  sim.advance_to(kDay);
  sim.capture();
  sim.advance_to(2 * kDay);
  sim.capture();
  const auto t0 = sim.dataset().snapshots[0].timestamp;
  const auto t2 = sim.dataset().snapshots[2].timestamp;

  sim.drop_snapshot(1);  // middle: neighbors must close ranks in order
  ASSERT_EQ(sim.dataset().snapshots.size(), 2u);
  EXPECT_EQ(sim.dataset().snapshots[0].timestamp, t0);
  EXPECT_EQ(sim.dataset().snapshots[1].timestamp, t2);

  sim.drop_snapshot(1);  // last: earlier snapshots untouched
  ASSERT_EQ(sim.dataset().snapshots.size(), 1u);
  EXPECT_EQ(sim.dataset().snapshots[0].timestamp, t0);

  sim.drop_snapshot(0);  // sole remaining snapshot
  EXPECT_TRUE(sim.dataset().snapshots.empty());
}

TEST(Simulator, DropSnapshotSupportsRollingWindowCampaign) {
  // The daily-splits workflow keeps a bounded window: capture a day,
  // analyze, drop the oldest. Record content must match a straight run
  // that never dropped anything.
  SimOptions opt;
  opt.weekly_churn = false;
  opt.daily_event_rate = 8.0;

  auto rolling = make_sim(2019.0, 0.02, 5, opt);
  auto straight = make_sim(2019.0, 0.02, 5, opt);
  for (int day = 0; day < 4; ++day) {
    rolling.advance_to(day * kDay + 1);
    rolling.capture();
    straight.advance_to(day * kDay + 1);
    straight.capture();
    while (rolling.dataset().snapshots.size() > 2) rolling.drop_snapshot(0);
    ASSERT_LE(rolling.dataset().snapshots.size(), 2u);
  }
  // The rolling window's snapshots are the straight run's last two.
  const auto& rs = rolling.dataset().snapshots;
  const auto& ss = straight.dataset().snapshots;
  ASSERT_EQ(rs.size(), 2u);
  ASSERT_EQ(ss.size(), 4u);
  for (std::size_t w = 0; w < 2; ++w) {
    const auto& a = rs[w];
    const auto& b = ss[ss.size() - 2 + w];
    EXPECT_EQ(a.timestamp, b.timestamp);
    ASSERT_EQ(a.peers.size(), b.peers.size());
    for (std::size_t p = 0; p < a.peers.size(); ++p) {
      EXPECT_EQ(a.peers[p].records, b.peers[p].records);
    }
  }
}

TEST(Simulator, NonPositiveDailyEventRateSchedulesNothing) {
  for (const double rate : {0.0, -3.5}) {
    SimOptions opt;
    opt.weekly_churn = false;
    opt.daily_event_rate = rate;
    auto sim = make_sim(2019.0, 0.02, 5, opt);
    sim.capture();
    sim.advance_to(5 * kDay);
    sim.capture();
    EXPECT_EQ(sim.events_applied(), 0u) << "rate " << rate;
    // With no churn at all the two captures must be identical.
    const auto& ds = sim.dataset();
    ASSERT_EQ(ds.snapshots.size(), 2u);
    for (std::size_t p = 0; p < ds.snapshots[0].peers.size(); ++p) {
      EXPECT_EQ(ds.snapshots[0].peers[p].records,
                ds.snapshots[1].peers[p].records);
    }
  }
}

TEST(Simulator, DailyEventModeGeneratesSplits) {
  SimOptions opt;
  opt.weekly_churn = false;
  opt.daily_event_rate = 20.0;
  auto sim = make_sim(2019.0, 0.02, 5, opt);
  sim.capture();
  sim.advance_to(5 * kDay);
  EXPECT_GT(sim.events_applied(), 30u);
}

TEST(Simulator, BaseTimeOffsetsTimestamps) {
  SimOptions opt;
  opt.base_time = 1'600'000'000;
  auto sim = make_sim(2012.0, 0.02, 5, opt);
  sim.capture();
  EXPECT_EQ(sim.dataset().snapshots[0].timestamp, 1'600'000'000);
}

}  // namespace
}  // namespace bgpatoms::routing
