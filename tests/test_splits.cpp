// Tests for atom-split detection and observer counting (§4.4.1).
#include <gtest/gtest.h>

#include <deque>

#include "core/splits.h"
#include "testutil.h"

namespace bgpatoms::core {
namespace {

using test::DatasetBuilder;

struct Triple {
  bgp::Dataset ds;
  std::deque<SanitizedSnapshot> snaps;
  std::deque<AtomSet> atoms;
};

template <typename F0, typename F1, typename F2>
Triple make_triple(F0&& f0, F1&& f1, F2&& f2) {
  DatasetBuilder b;
  f0(b);
  b.snapshot(1000);
  f1(b);
  b.snapshot(2000);
  f2(b);
  Triple t{std::move(b.dataset()), {}, {}};
  for (int i = 0; i < 3; ++i) {
    t.snaps.push_back(sanitize(t.ds, i, test::lax_config()));
    t.atoms.push_back(compute_atoms(t.snaps.back()));
  }
  return t;
}

// Stable 2-peer snapshot content: one 2-prefix atom.
void stable(DatasetBuilder& b) {
  b.peer(100).route("10.0.0.0/16", "100 1").route("10.1.0.0/16", "100 1");
  b.peer(200).route("10.0.0.0/16", "200 1").route("10.1.0.0/16", "200 1");
}

TEST(Splits, NoChangeNoSplit) {
  const auto t = make_triple(stable, stable, stable);
  EXPECT_TRUE(detect_splits(t.atoms[0], t.atoms[1], t.atoms[2]).empty());
}

TEST(Splits, SplitDetectedWithSingleObserver) {
  const auto t = make_triple(stable, stable, [](DatasetBuilder& b) {
    // Peer 100 now sees the two prefixes on different paths; peer 200
    // still sees them together.
    b.peer(100).route("10.0.0.0/16", "100 1").route("10.1.0.0/16", "100 9 1");
    b.peer(200).route("10.0.0.0/16", "200 1").route("10.1.0.0/16", "200 1");
  });
  const auto events = detect_splits(t.atoms[0], t.atoms[1], t.atoms[2]);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].atom_size, 2u);
  ASSERT_EQ(events[0].observers.size(), 1u);
  EXPECT_EQ(events[0].observers[0].asn, 100u);
}

TEST(Splits, SplitSeenByAllObservers) {
  const auto t = make_triple(stable, stable, [](DatasetBuilder& b) {
    b.peer(100).route("10.0.0.0/16", "100 1").route("10.1.0.0/16", "100 9 1");
    b.peer(200).route("10.0.0.0/16", "200 1").route("10.1.0.0/16", "200 9 1");
  });
  const auto events = detect_splits(t.atoms[0], t.atoms[1], t.atoms[2]);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].observers.size(), 2u);
}

TEST(Splits, AtomMustExistAtBothPriorSnapshots) {
  // The atom only forms at t+1 -> not eligible for split detection.
  const auto t = make_triple(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 9 1");
      },
      stable,
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 9 1");
      });
  EXPECT_TRUE(detect_splits(t.atoms[0], t.atoms[1], t.atoms[2]).empty());
}

TEST(Splits, MergesAreIgnored) {
  // Two atoms at t/t+1 merge at t+2: per the paper, not counted.
  auto two_atoms = [](DatasetBuilder& b) {
    b.peer(100).route("10.0.0.0/16", "100 1").route("10.1.0.0/16", "100 9 1");
  };
  const auto t = make_triple(two_atoms, two_atoms, [](DatasetBuilder& b) {
    b.peer(100).route("10.0.0.0/16", "100 1").route("10.1.0.0/16", "100 1");
  });
  EXPECT_TRUE(detect_splits(t.atoms[0], t.atoms[1], t.atoms[2]).empty());
}

TEST(Splits, DisappearedPrefixCountsAsSplit) {
  const auto t = make_triple(stable, stable, [](DatasetBuilder& b) {
    b.peer(100).route("10.0.0.0/16", "100 1");
    b.peer(200).route("10.0.0.0/16", "200 1");
  });
  const auto events = detect_splits(t.atoms[0], t.atoms[1], t.atoms[2]);
  ASSERT_EQ(events.size(), 1u);
  // Both peers now see divergent state (one prefix gone).
  EXPECT_EQ(events[0].observers.size(), 2u);
}

TEST(Splits, FullWithdrawalIsNotObserved) {
  // A VP that loses BOTH prefixes saw a withdrawal, not a regrouping.
  const auto t = make_triple(stable, stable, [](DatasetBuilder& b) {
    b.peer(100).route("10.0.0.0/16", "100 1").route("10.1.0.0/16", "100 9 1");
    b.peer(200).route("10.9.0.0/16", "200 7");  // unrelated table
  });
  const auto events = detect_splits(t.atoms[0], t.atoms[1], t.atoms[2]);
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].observers.size(), 1u);
  EXPECT_EQ(events[0].observers[0].asn, 100u);
}

TEST(Splits, SinglePrefixAtomsCannotSplit) {
  auto singles = [](DatasetBuilder& b) {
    b.peer(100).route("10.0.0.0/16", "100 1").route("10.1.0.0/16", "100 9 1");
  };
  const auto t = make_triple(singles, singles, [](DatasetBuilder& b) {
    b.peer(100).route("10.0.0.0/16", "100 8 1").route("10.1.0.0/16", "100 1");
  });
  // Path swaps on single-prefix atoms are not splits.
  EXPECT_TRUE(detect_splits(t.atoms[0], t.atoms[1], t.atoms[2]).empty());
}

TEST(Splits, MultipleEventsReported) {
  auto two_pairs = [](DatasetBuilder& b) {
    b.peer(100)
        .route("10.0.0.0/16", "100 1")
        .route("10.1.0.0/16", "100 1")
        .route("10.2.0.0/16", "100 9 2")
        .route("10.3.0.0/16", "100 9 2");
  };
  const auto t =
      make_triple(two_pairs, two_pairs, [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 8 1")
            .route("10.2.0.0/16", "100 9 2")
            .route("10.3.0.0/16", "100 7 9 2");
      });
  EXPECT_EQ(detect_splits(t.atoms[0], t.atoms[1], t.atoms[2]).size(), 2u);
}

}  // namespace
}  // namespace bgpatoms::core
