// Tests for CAM / MPM stability metrics (§3.5).
#include <gtest/gtest.h>

#include "core/stability.h"
#include "testutil.h"

namespace bgpatoms::core {
namespace {

using test::DatasetBuilder;

struct Pair {
  bgp::Dataset ds;
  SanitizedSnapshot s1, s2;
  AtomSet a1, a2;
};

/// Builds both snapshots through the builder callbacks, then computes atoms.
template <typename F1, typename F2>
Pair make_pair(F1&& fill_t1, F2&& fill_t2) {
  DatasetBuilder b;
  fill_t1(b);
  b.snapshot(1000);
  fill_t2(b);
  Pair p{std::move(b.dataset()), {}, {}, {}, {}};
  p.s1 = sanitize(p.ds, 0, test::lax_config());
  p.s2 = sanitize(p.ds, 1, test::lax_config());
  p.a1 = compute_atoms(p.s1);
  p.a2 = compute_atoms(p.s2);
  return p;
}

TEST(Stability, IdenticalSnapshotsArePerfectlyStable) {
  auto fill = [](DatasetBuilder& b) {
    b.peer(100)
        .route("10.0.0.0/16", "100 1")
        .route("10.1.0.0/16", "100 1")
        .route("10.2.0.0/16", "100 2");
  };
  const auto p = make_pair(fill, fill);
  const auto r = stability(p.a1, p.a2);
  EXPECT_DOUBLE_EQ(r.cam, 1.0);
  EXPECT_DOUBLE_EQ(r.mpm, 1.0);
  EXPECT_EQ(r.atoms_t1, 2u);
  EXPECT_EQ(r.atoms_matched_exactly, 2u);
}

TEST(Stability, PathChangeWithoutRegroupingIsStable) {
  // Atoms are prefix groupings; a wholesale AS-path change that keeps the
  // grouping intact must not count as instability (§4.4.1 note).
  const auto p = make_pair(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 5 1")
            .route("10.1.0.0/16", "100 5 1");
      },
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 6 1")
            .route("10.1.0.0/16", "100 6 1");
      });
  const auto r = stability(p.a1, p.a2);
  EXPECT_DOUBLE_EQ(r.cam, 1.0);
  EXPECT_DOUBLE_EQ(r.mpm, 1.0);
}

TEST(Stability, SplitDropsCamMoreThanMpm) {
  // One 3-prefix atom splits 2+1: CAM loses the whole atom, MPM keeps 2/3.
  const auto p = make_pair(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1")
            .route("10.2.0.0/16", "100 1");
      },
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1")
            .route("10.2.0.0/16", "100 9 1");
      });
  const auto r = stability(p.a1, p.a2);
  EXPECT_DOUBLE_EQ(r.cam, 0.0);
  EXPECT_NEAR(r.mpm, 2.0 / 3.0, 1e-9);
}

TEST(Stability, MergeBreaksBothAtoms) {
  const auto p = make_pair(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 9 1");
      },
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1");
      });
  const auto r = stability(p.a1, p.a2);
  EXPECT_DOUBLE_EQ(r.cam, 0.0);
  // MPM: the merged atom can be claimed by only one of the two t1 atoms.
  EXPECT_NEAR(r.mpm, 0.5, 1e-9);
}

TEST(Stability, GreedyMappingIsOneToOne) {
  // Two t1 atoms overlap the same t2 atom; only one may claim it.
  const auto p = make_pair(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1")
            .route("10.2.0.0/16", "100 9 1");
      },
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1")
            .route("10.2.0.0/16", "100 1");
      });
  const auto r = stability(p.a1, p.a2);
  // t1: {A,B} and {C}; t2: {A,B,C}. Larger atom claims overlap 2; the
  // single-prefix atom finds nothing left.
  EXPECT_EQ(r.prefixes_matched, 2u);
  EXPECT_NEAR(r.mpm, 2.0 / 3.0, 1e-9);
}

TEST(Stability, LargestAtomsClaimFirst) {
  // Greedy order is by t1 atom size (descending): the 3-prefix atom gets
  // its best match even if a smaller atom shares it.
  const auto p = make_pair(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1")
            .route("10.2.0.0/16", "100 1")
            .route("10.3.0.0/16", "100 9 1");
      },
      [](DatasetBuilder& b) {
        // All four merge into one atom at t2.
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1")
            .route("10.2.0.0/16", "100 1")
            .route("10.3.0.0/16", "100 1");
      });
  const auto r = stability(p.a1, p.a2);
  EXPECT_EQ(r.prefixes_matched, 3u);  // the big atom wins the merged atom
  EXPECT_NEAR(r.mpm, 3.0 / 4.0, 1e-9);
}

TEST(Stability, DisappearedPrefixesReduceMpm) {
  const auto p = make_pair(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1");
      },
      [](DatasetBuilder& b) { b.peer(100).route("10.0.0.0/16", "100 1"); });
  const auto r = stability(p.a1, p.a2);
  EXPECT_DOUBLE_EQ(r.cam, 0.0);
  EXPECT_NEAR(r.mpm, 0.5, 1e-9);
}

TEST(Stability, EmptyFirstSnapshot) {
  const auto p = make_pair(
      [](DatasetBuilder& b) { b.peer(100); },
      [](DatasetBuilder& b) { b.peer(100).route("10.0.0.0/16", "100 1"); });
  const auto r = stability(p.a1, p.a2);
  EXPECT_DOUBLE_EQ(r.cam, 0.0);
  EXPECT_DOUBLE_EQ(r.mpm, 0.0);
  EXPECT_EQ(r.atoms_t1, 0u);
}

/// Hand-built AtomSet: stability() only touches atoms, sizes, and atom_of.
AtomSet make_atoms(std::vector<std::vector<bgp::PrefixId>> groups) {
  AtomSet s;
  for (std::uint32_t i = 0; i < groups.size(); ++i) {
    Atom a;
    a.prefixes = std::move(groups[i]);
    for (bgp::PrefixId p : a.prefixes) s.atom_of[p] = i;
    s.atoms.push_back(std::move(a));
  }
  return s;
}

TEST(Stability, MpmTieBreaksEqualSizeAtomsByIndex) {
  // Regression: the greedy MPM pass sorts t1 atoms largest-first with
  // std::sort, which is unstable — equal-size atoms could be visited in a
  // platform-dependent order, changing the MPM value across standard
  // libraries. The tie-break is by atom index, so here atom 0 must claim
  // first even though atom 1 has the same size.
  //
  // t1: X={0,1} (index 0), Y={2,3} (index 1); t2: P={0,1,2}, Q={3}.
  // X first: X claims P (overlap 2), Y claims Q (overlap 1) -> 3/4.
  // Y first would leave X unmatched -> 1/4. Index order demands 3/4.
  const AtomSet t1 = make_atoms({{0, 1}, {2, 3}});
  const AtomSet t2 = make_atoms({{0, 1, 2}, {3}});
  const auto r = stability(t1, t2);
  EXPECT_EQ(r.prefixes_matched, 3u);
  EXPECT_NEAR(r.mpm, 3.0 / 4.0, 1e-12);
}

TEST(Stability, MpmDeterministicWithManyEqualSizeAtoms) {
  // A long run of equal-size atoms where every claim conflicts with the
  // next atom's best choice: the result is only well-defined under the
  // index tie-break, and repeated evaluation must be bit-identical.
  //
  // t1 atom i = {2i, 2i+1}; t2 atom i = {2i+1, 2i+2} (a one-prefix shift).
  // Under index order, t1 atom i claims t2 atom i (overlap 1 via 2i+1;
  // candidates i-1 and i tie at overlap 1 once i-1 is taken, and the lower
  // index wins first). Every t1 atom matches exactly one prefix.
  constexpr std::uint32_t kAtoms = 64;
  std::vector<std::vector<bgp::PrefixId>> g1, g2;
  for (std::uint32_t i = 0; i < kAtoms; ++i) {
    g1.push_back({2 * i, 2 * i + 1});
    g2.push_back({2 * i + 1, 2 * i + 2});
  }
  const AtomSet t1 = make_atoms(std::move(g1));
  const AtomSet t2 = make_atoms(std::move(g2));
  const auto first = stability(t1, t2);
  EXPECT_EQ(first.prefixes_matched, kAtoms);
  EXPECT_NEAR(first.mpm, 0.5, 1e-12);
  for (int rep = 0; rep < 10; ++rep) {
    const auto again = stability(t1, t2);
    EXPECT_EQ(again.prefixes_matched, first.prefixes_matched);
    EXPECT_EQ(again.mpm, first.mpm);
  }
}

TEST(Stability, MetricsAreDirectional) {
  // CAM(t1,t2) != CAM(t2,t1) in general (denominator is |A_t1|).
  const auto p = make_pair(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1");
      },
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 9 1")
            .route("10.2.0.0/16", "100 8 1");
      });
  const auto fwd = stability(p.a1, p.a2);
  const auto rev = stability(p.a2, p.a1);
  EXPECT_DOUBLE_EQ(fwd.cam, 0.0);  // the 2-prefix atom is gone
  EXPECT_NEAR(rev.cam, 0.0, 1e-9);
  EXPECT_NE(fwd.atoms_t1, rev.atoms_t1);
}

}  // namespace
}  // namespace bgpatoms::core
