// Tests for CAM / MPM stability metrics (§3.5).
#include <gtest/gtest.h>

#include "core/stability.h"
#include "testutil.h"

namespace bgpatoms::core {
namespace {

using test::DatasetBuilder;

struct Pair {
  bgp::Dataset ds;
  SanitizedSnapshot s1, s2;
  AtomSet a1, a2;
};

/// Builds both snapshots through the builder callbacks, then computes atoms.
template <typename F1, typename F2>
Pair make_pair(F1&& fill_t1, F2&& fill_t2) {
  DatasetBuilder b;
  fill_t1(b);
  b.snapshot(1000);
  fill_t2(b);
  Pair p{std::move(b.dataset()), {}, {}, {}, {}};
  p.s1 = sanitize(p.ds, 0, test::lax_config());
  p.s2 = sanitize(p.ds, 1, test::lax_config());
  p.a1 = compute_atoms(p.s1);
  p.a2 = compute_atoms(p.s2);
  return p;
}

TEST(Stability, IdenticalSnapshotsArePerfectlyStable) {
  auto fill = [](DatasetBuilder& b) {
    b.peer(100)
        .route("10.0.0.0/16", "100 1")
        .route("10.1.0.0/16", "100 1")
        .route("10.2.0.0/16", "100 2");
  };
  const auto p = make_pair(fill, fill);
  const auto r = stability(p.a1, p.a2);
  EXPECT_DOUBLE_EQ(r.cam, 1.0);
  EXPECT_DOUBLE_EQ(r.mpm, 1.0);
  EXPECT_EQ(r.atoms_t1, 2u);
  EXPECT_EQ(r.atoms_matched_exactly, 2u);
}

TEST(Stability, PathChangeWithoutRegroupingIsStable) {
  // Atoms are prefix groupings; a wholesale AS-path change that keeps the
  // grouping intact must not count as instability (§4.4.1 note).
  const auto p = make_pair(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 5 1")
            .route("10.1.0.0/16", "100 5 1");
      },
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 6 1")
            .route("10.1.0.0/16", "100 6 1");
      });
  const auto r = stability(p.a1, p.a2);
  EXPECT_DOUBLE_EQ(r.cam, 1.0);
  EXPECT_DOUBLE_EQ(r.mpm, 1.0);
}

TEST(Stability, SplitDropsCamMoreThanMpm) {
  // One 3-prefix atom splits 2+1: CAM loses the whole atom, MPM keeps 2/3.
  const auto p = make_pair(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1")
            .route("10.2.0.0/16", "100 1");
      },
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1")
            .route("10.2.0.0/16", "100 9 1");
      });
  const auto r = stability(p.a1, p.a2);
  EXPECT_DOUBLE_EQ(r.cam, 0.0);
  EXPECT_NEAR(r.mpm, 2.0 / 3.0, 1e-9);
}

TEST(Stability, MergeBreaksBothAtoms) {
  const auto p = make_pair(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 9 1");
      },
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1");
      });
  const auto r = stability(p.a1, p.a2);
  EXPECT_DOUBLE_EQ(r.cam, 0.0);
  // MPM: the merged atom can be claimed by only one of the two t1 atoms.
  EXPECT_NEAR(r.mpm, 0.5, 1e-9);
}

TEST(Stability, GreedyMappingIsOneToOne) {
  // Two t1 atoms overlap the same t2 atom; only one may claim it.
  const auto p = make_pair(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1")
            .route("10.2.0.0/16", "100 9 1");
      },
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1")
            .route("10.2.0.0/16", "100 1");
      });
  const auto r = stability(p.a1, p.a2);
  // t1: {A,B} and {C}; t2: {A,B,C}. Larger atom claims overlap 2; the
  // single-prefix atom finds nothing left.
  EXPECT_EQ(r.prefixes_matched, 2u);
  EXPECT_NEAR(r.mpm, 2.0 / 3.0, 1e-9);
}

TEST(Stability, LargestAtomsClaimFirst) {
  // Greedy order is by t1 atom size (descending): the 3-prefix atom gets
  // its best match even if a smaller atom shares it.
  const auto p = make_pair(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1")
            .route("10.2.0.0/16", "100 1")
            .route("10.3.0.0/16", "100 9 1");
      },
      [](DatasetBuilder& b) {
        // All four merge into one atom at t2.
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1")
            .route("10.2.0.0/16", "100 1")
            .route("10.3.0.0/16", "100 1");
      });
  const auto r = stability(p.a1, p.a2);
  EXPECT_EQ(r.prefixes_matched, 3u);  // the big atom wins the merged atom
  EXPECT_NEAR(r.mpm, 3.0 / 4.0, 1e-9);
}

TEST(Stability, DisappearedPrefixesReduceMpm) {
  const auto p = make_pair(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1");
      },
      [](DatasetBuilder& b) { b.peer(100).route("10.0.0.0/16", "100 1"); });
  const auto r = stability(p.a1, p.a2);
  EXPECT_DOUBLE_EQ(r.cam, 0.0);
  EXPECT_NEAR(r.mpm, 0.5, 1e-9);
}

TEST(Stability, EmptyFirstSnapshot) {
  const auto p = make_pair(
      [](DatasetBuilder& b) { b.peer(100); },
      [](DatasetBuilder& b) { b.peer(100).route("10.0.0.0/16", "100 1"); });
  const auto r = stability(p.a1, p.a2);
  EXPECT_DOUBLE_EQ(r.cam, 0.0);
  EXPECT_DOUBLE_EQ(r.mpm, 0.0);
  EXPECT_EQ(r.atoms_t1, 0u);
}

TEST(Stability, MetricsAreDirectional) {
  // CAM(t1,t2) != CAM(t2,t1) in general (denominator is |A_t1|).
  const auto p = make_pair(
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 1");
      },
      [](DatasetBuilder& b) {
        b.peer(100)
            .route("10.0.0.0/16", "100 1")
            .route("10.1.0.0/16", "100 9 1")
            .route("10.2.0.0/16", "100 8 1");
      });
  const auto fwd = stability(p.a1, p.a2);
  const auto rev = stability(p.a2, p.a1);
  EXPECT_DOUBLE_EQ(fwd.cam, 0.0);  // the 2-prefix atom is gone
  EXPECT_NEAR(rev.cam, 0.0, 1e-9);
  EXPECT_NE(fwd.atoms_t1, rev.atoms_t1);
}

}  // namespace
}  // namespace bgpatoms::core
