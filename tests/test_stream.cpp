// Tests for the BGPStream-like record reader, in-memory and streaming.
#include <gtest/gtest.h>

#include <filesystem>

#include "bgp/archive.h"
#include "routing/simulator.h"
#include "stream/file_reader.h"
#include "stream/reader.h"

namespace bgpatoms::stream {
namespace {

struct Fixture {
  bgp::Dataset ds;

  Fixture() {
    ds.family = net::Family::kIPv4;
    ds.collectors = {"rrc00", "route-views.2"};
    const auto path = ds.paths.intern(net::AsPath::sequence({64496, 15169}));
    const auto a = ds.prefixes.intern(*net::Prefix::parse("8.8.8.0/24"));
    const auto b = ds.prefixes.intern(*net::Prefix::parse("8.8.4.0/24"));
    const auto c = ds.prefixes.intern(*net::Prefix::parse("10.0.0.0/8"));

    bgp::Snapshot snap;
    snap.timestamp = 1000;
    bgp::PeerFeed f1;
    f1.peer = {64496, net::IpAddress::v4(1), 0};
    f1.records = {{a, path, 0, bgp::RecordStatus::kValid},
                  {c, path, 0, bgp::RecordStatus::kValid}};
    snap.peers.push_back(f1);
    bgp::PeerFeed f2;
    f2.peer = {64497, net::IpAddress::v4(2), 1};
    f2.records = {{b, path, 0, bgp::RecordStatus::kValid}};
    snap.peers.push_back(f2);
    ds.snapshots.push_back(std::move(snap));

    bgp::UpdateRecord u1;
    u1.timestamp = 1100;
    u1.collector = 0;
    u1.peer = 0;
    u1.path = path;
    u1.announced = {a, b};
    ds.updates.push_back(u1);
    bgp::UpdateRecord u2;
    u2.timestamp = 1200;
    u2.collector = 1;
    u2.peer = 1;
    u2.withdrawn = {c};
    ds.updates.push_back(u2);
  }
};

std::vector<Record> drain(RecordReader& reader) {
  std::vector<Record> out;
  while (auto rec = reader.next()) out.push_back(*rec);
  return out;
}

TEST(RecordReader, YieldsRibThenUpdates) {
  Fixture f;
  RecordReader reader(f.ds);
  const auto recs = drain(reader);
  ASSERT_EQ(recs.size(), 6u);  // 3 RIB rows + 2 announced + 1 withdrawn
  EXPECT_EQ(recs[0].type, RecordType::kRibEntry);
  EXPECT_EQ(recs[3].type, RecordType::kAnnouncement);
  EXPECT_EQ(recs[5].type, RecordType::kWithdrawal);
  EXPECT_EQ(reader.count(), 6u);
}

TEST(RecordReader, RibRecordContent) {
  Fixture f;
  RecordReader reader(f.ds);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->collector, "rrc00");
  EXPECT_EQ(rec->peer_asn, 64496u);
  EXPECT_EQ(rec->prefix, *net::Prefix::parse("8.8.8.0/24"));
  ASSERT_NE(rec->path, nullptr);
  EXPECT_EQ(rec->path->to_string(), "64496 15169");
  EXPECT_EQ(rec->timestamp, 1000);
}

TEST(RecordReader, WithdrawalHasNoPath) {
  Fixture f;
  Filters filters;
  filters.include_rib = false;
  RecordReader reader(f.ds, filters);
  const auto recs = drain(reader);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[2].type, RecordType::kWithdrawal);
  EXPECT_EQ(recs[2].path, nullptr);
}

TEST(RecordReader, CollectorFilter) {
  Fixture f;
  Filters filters;
  filters.collector = "rrc00";
  RecordReader reader(f.ds, filters);
  for (const auto& rec : drain(reader)) {
    EXPECT_EQ(rec.collector, "rrc00");
  }
}

TEST(RecordReader, PeerFilter) {
  Fixture f;
  Filters filters;
  filters.peer_asn = 64497;
  RecordReader reader(f.ds, filters);
  const auto recs = drain(reader);
  ASSERT_EQ(recs.size(), 2u);  // 1 RIB row + update u2
  for (const auto& rec : recs) EXPECT_EQ(rec.peer_asn, 64497u);
}

TEST(RecordReader, PrefixWithinFilter) {
  Fixture f;
  Filters filters;
  filters.prefix_within = *net::Prefix::parse("8.8.0.0/16");
  RecordReader reader(f.ds, filters);
  const auto recs = drain(reader);
  ASSERT_EQ(recs.size(), 4u);  // two RIB rows + two announcements
  for (const auto& rec : recs) {
    EXPECT_TRUE(filters.prefix_within->contains(rec.prefix));
  }
}

TEST(RecordReader, TimeWindowFilter) {
  Fixture f;
  Filters filters;
  filters.time_begin = 1150;
  RecordReader reader(f.ds, filters);
  const auto recs = drain(reader);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].timestamp, 1200);
}

TEST(RecordReader, UpdatesOnlyToggle) {
  Fixture f;
  Filters filters;
  filters.include_updates = false;
  RecordReader reader(f.ds, filters);
  for (const auto& rec : drain(reader)) {
    EXPECT_EQ(rec.type, RecordType::kRibEntry);
  }
}

TEST(RecordReader, EmptyDataset) {
  bgp::Dataset ds;
  RecordReader reader(ds);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(RecordReader, WorksOverSimulatedDataset) {
  routing::Simulator sim(
      topo::generate_topology(topo::era_params_v4(2008.0, 0.01), 4));
  sim.capture();
  sim.emit_updates(routing::kHour);
  RecordReader reader(sim.dataset());
  std::size_t rib = 0, ann = 0, wd = 0;
  while (auto rec = reader.next()) {
    switch (rec->type) {
      case RecordType::kRibEntry:
        ++rib;
        break;
      case RecordType::kAnnouncement:
        ++ann;
        break;
      case RecordType::kWithdrawal:
        ++wd;
        break;
    }
  }
  EXPECT_EQ(rib, bgp::Dataset::record_count(sim.dataset().snapshots[0]));
  std::size_t expected_ann = 0, expected_wd = 0;
  for (const auto& u : sim.dataset().updates) {
    expected_ann += u.announced.size();
    expected_wd += u.withdrawn.size();
  }
  EXPECT_EQ(ann, expected_ann);
  EXPECT_EQ(wd, expected_wd);
}

// --- FileRecordReader: streaming must match the in-memory reader ------------

std::vector<Record> drain_file(FileRecordReader& reader) {
  std::vector<Record> out;
  while (auto rec = reader.next()) out.push_back(*rec);
  return out;
}

/// Same record stream, field by field. Record has views/pointers, so
/// compare the resolved values.
void expect_same_records(const std::vector<Record>& mem,
                         const std::vector<Record>& file) {
  ASSERT_EQ(mem.size(), file.size());
  for (std::size_t i = 0; i < mem.size(); ++i) {
    EXPECT_EQ(mem[i].type, file[i].type) << "record " << i;
    EXPECT_EQ(mem[i].timestamp, file[i].timestamp) << "record " << i;
    EXPECT_EQ(mem[i].collector, file[i].collector) << "record " << i;
    EXPECT_EQ(mem[i].peer_asn, file[i].peer_asn) << "record " << i;
    EXPECT_EQ(mem[i].peer_address, file[i].peer_address) << "record " << i;
    EXPECT_EQ(mem[i].prefix, file[i].prefix) << "record " << i;
    EXPECT_EQ(mem[i].path == nullptr, file[i].path == nullptr) << i;
    if (mem[i].path && file[i].path) {
      EXPECT_EQ(*mem[i].path, *file[i].path) << "record " << i;
    }
    EXPECT_TRUE(std::equal(mem[i].communities.begin(),
                           mem[i].communities.end(),
                           file[i].communities.begin(),
                           file[i].communities.end()))
        << "record " << i;
    EXPECT_EQ(mem[i].status, file[i].status) << "record " << i;
  }
}

class StreamTempFile {
 public:
  StreamTempFile(const bgp::Dataset& ds, bgp::ArchiveVersion v)
      : path_((std::filesystem::temp_directory_path() /
               (v == bgp::ArchiveVersion::kV1 ? "stream_v1.bga"
                                              : "stream_v2.bga"))
                  .string()) {
    bgp::write_archive_file(ds, path_, v);
  }
  ~StreamTempFile() { std::filesystem::remove(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(FileRecordReader, MatchesInMemoryReaderBothVersions) {
  Fixture f;
  RecordReader mem_reader(f.ds);
  const auto mem = drain(mem_reader);
  for (auto v : {bgp::ArchiveVersion::kV1, bgp::ArchiveVersion::kV2}) {
    const StreamTempFile file(f.ds, v);
    FileRecordReader reader(file.path());
    expect_same_records(mem, drain_file(reader));
    EXPECT_EQ(reader.count(), mem_reader.count());
  }
}

TEST(FileRecordReader, FiltersMatchInMemoryReader) {
  Fixture f;
  const StreamTempFile file(f.ds, bgp::ArchiveVersion::kV2);

  std::vector<Filters> cases;
  cases.push_back({});
  cases.emplace_back();
  cases.back().collector = "rrc00";
  cases.emplace_back();
  cases.back().peer_asn = 64497;
  cases.emplace_back();
  cases.back().prefix_within = *net::Prefix::parse("8.8.0.0/16");
  cases.emplace_back();
  cases.back().time_begin = 1100;
  cases.back().time_end = 1150;
  cases.emplace_back();
  cases.back().include_rib = false;
  cases.emplace_back();
  cases.back().include_updates = false;

  for (const auto& filters : cases) {
    RecordReader mem_reader(f.ds, filters);
    FileRecordReader file_reader(file.path(), filters);
    expect_same_records(drain(mem_reader), drain_file(file_reader));
  }
}

TEST(FileRecordReader, WorksOverSimulatedDataset) {
  routing::Simulator sim(
      topo::generate_topology(topo::era_params_v4(2005.0, 0.02), 7));
  sim.capture();
  sim.emit_updates(routing::kHour);
  const auto& ds = sim.dataset();

  RecordReader mem_reader(ds);
  const auto mem = drain(mem_reader);
  const StreamTempFile file(ds, bgp::ArchiveVersion::kV2);
  FileRecordReader reader(file.path());
  expect_same_records(mem, drain_file(reader));
  EXPECT_LT(reader.archive().peak_buffer_bytes(),
            reader.archive().file_bytes());
}

TEST(FileRecordReader, MissingFileThrows) {
  EXPECT_THROW(FileRecordReader("/nonexistent/not.bga"), bgp::ArchiveError);
}

}  // namespace
}  // namespace bgpatoms::stream
