// Tests for the bgpdump-style text renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "bgp/textdump.h"

namespace bgpatoms::bgp {
namespace {

Dataset tiny_dataset() {
  Dataset ds;
  ds.collectors = {"rrc00"};
  const PathId p = ds.paths.intern(net::AsPath::sequence({64496, 15169}));
  const PrefixId a = ds.prefixes.intern(*net::Prefix::parse("8.8.8.0/24"));
  Snapshot snap;
  snap.timestamp = 1000;
  PeerFeed feed;
  feed.peer = {64496, net::IpAddress::v4(0xC6120001u), 0};
  feed.records.push_back({a, p, 0, RecordStatus::kValid});
  feed.records.push_back({a, p, 0, RecordStatus::kCorruptSubtype});
  snap.peers.push_back(feed);
  ds.snapshots.push_back(snap);

  UpdateRecord u;
  u.timestamp = 1060;
  u.peer = 0;
  u.path = p;
  u.announced = {a};
  u.withdrawn = {a};
  ds.updates.push_back(u);
  return ds;
}

TEST(TextDump, SnapshotLines) {
  const Dataset ds = tiny_dataset();
  std::ostringstream os;
  dump_snapshot(os, ds, ds.snapshots[0]);
  const std::string out = os.str();
  EXPECT_NE(out.find("TABLE_DUMP2|1000|B|rrc00|198.18.0.1|64496|8.8.8.0/24|"
                     "64496 15169|IGP"),
            std::string::npos);
  // Parse warnings are surfaced the way BGPStream surfaces them.
  EXPECT_NE(out.find("W:unknown-subtype-9"), std::string::npos);
}

TEST(TextDump, UpdateLines) {
  const Dataset ds = tiny_dataset();
  std::ostringstream os;
  dump_updates(os, ds);
  const std::string out = os.str();
  EXPECT_NE(out.find("BGP4MP|1060|W|rrc00|0|8.8.8.0/24"), std::string::npos);
  EXPECT_NE(out.find("BGP4MP|1060|A|rrc00|0|8.8.8.0/24|64496 15169|IGP"),
            std::string::npos);
}

}  // namespace
}  // namespace bgpatoms::bgp
