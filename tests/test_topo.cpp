// Tests for the AS graph container and the topology generator's structural
// invariants.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "topo/topology.h"

namespace bgpatoms::topo {
namespace {

TEST(AsGraph, AddNodeAndFind) {
  AsGraph g;
  const NodeId a = g.add_node(100, Tier::kTier1, 0, 1);
  EXPECT_EQ(g.find(100), a);
  EXPECT_EQ(g.find(999), kNoNode);
  EXPECT_THROW(g.add_node(100, Tier::kEdge, 0, 2), std::invalid_argument);
}

TEST(AsGraph, EdgeIsSymmetricWithReversedRole) {
  AsGraph g;
  const NodeId cust = g.add_node(1, Tier::kEdge, 0, 1);
  const NodeId prov = g.add_node(2, Tier::kTransit, 0, 2);
  g.add_edge(cust, prov, Rel::kProvider);  // 2 provides transit to 1
  ASSERT_EQ(g.node(cust).neighbors.size(), 1u);
  ASSERT_EQ(g.node(prov).neighbors.size(), 1u);
  EXPECT_EQ(g.node(cust).neighbors[0].rel, Rel::kProvider);
  EXPECT_EQ(g.node(prov).neighbors[0].rel, Rel::kCustomer);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(AsGraph, DuplicateEdgeIgnored) {
  AsGraph g;
  const NodeId a = g.add_node(1, Tier::kEdge, 0, 1);
  const NodeId b = g.add_node(2, Tier::kEdge, 0, 2);
  g.add_edge(a, b, Rel::kPeer);
  g.add_edge(a, b, Rel::kProvider);  // already connected: no-op
  g.add_edge(b, a, Rel::kPeer);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.node(a).neighbors[0].rel, Rel::kPeer);
}

TEST(AsGraph, SelfEdgeThrows) {
  AsGraph g;
  const NodeId a = g.add_node(1, Tier::kEdge, 0, 1);
  EXPECT_THROW(g.add_edge(a, a, Rel::kPeer), std::invalid_argument);
}

TEST(AsGraph, ReverseHelper) {
  EXPECT_EQ(reverse(Rel::kProvider), Rel::kCustomer);
  EXPECT_EQ(reverse(Rel::kCustomer), Rel::kProvider);
  EXPECT_EQ(reverse(Rel::kPeer), Rel::kPeer);
  EXPECT_EQ(reverse(Rel::kSibling), Rel::kSibling);
}

class GeneratorTest : public ::testing::Test {
 protected:
  static Topology make(double year = 2010.0, double scale = 0.02,
                       std::uint64_t seed = 1,
                       net::Family family = net::Family::kIPv4) {
    const EraParams era = family == net::Family::kIPv4
                              ? era_params_v4(year, scale)
                              : era_params_v6(year, scale);
    return generate_topology(era, seed);
  }
};

TEST_F(GeneratorTest, SizesMatchEra) {
  const Topology t = make();
  EXPECT_EQ(static_cast<int>(t.graph.size()), t.params.n_as);
  EXPECT_EQ(static_cast<int>(t.collector_names.size()), t.params.n_collectors);
  EXPECT_LE(static_cast<int>(t.vantage_points.size()), t.params.n_peers);
  EXPECT_GT(t.vantage_points.size(), 0u);
  EXPECT_EQ(t.prefixes.size(), t.graph.size());
}

TEST_F(GeneratorTest, HierarchyIsConnected) {
  for (std::uint64_t seed : {1, 7, 42}) {
    EXPECT_TRUE(make(2004.0, 0.02, seed).graph.hierarchy_connected()) << seed;
    EXPECT_TRUE(make(2024.0, 0.01, seed).graph.hierarchy_connected()) << seed;
  }
}

TEST_F(GeneratorTest, Tier1CliqueAndNoProviders) {
  const Topology t = make();
  for (int i = 0; i < t.params.n_tier1; ++i) {
    const auto& node = t.graph.node(static_cast<NodeId>(i));
    EXPECT_EQ(node.tier, Tier::kTier1);
    int tier1_peers = 0;
    for (const auto& nb : node.neighbors) {
      EXPECT_NE(nb.rel, Rel::kProvider) << "tier-1 must not buy transit";
      if (t.graph.node(nb.node).tier == Tier::kTier1) {
        EXPECT_EQ(nb.rel, Rel::kPeer);
        ++tier1_peers;
      }
    }
    EXPECT_EQ(tier1_peers, t.params.n_tier1 - 1);
  }
}

TEST_F(GeneratorTest, NonTier1HaveUpstreamOrSibling) {
  const Topology t = make();
  for (NodeId v = 0; v < t.graph.size(); ++v) {
    const auto& node = t.graph.node(v);
    if (node.tier == Tier::kTier1) continue;
    const bool connected = !node.neighbors.empty();
    EXPECT_TRUE(connected) << "node " << v << " isolated";
  }
}

TEST_F(GeneratorTest, AsnsAreUniqueAndClean) {
  const Topology t = make();
  std::unordered_set<net::Asn> seen;
  for (const auto& node : t.graph.nodes()) {
    EXPECT_TRUE(seen.insert(node.asn).second);
    EXPECT_FALSE(net::is_bogon_asn(node.asn));
  }
}

TEST_F(GeneratorTest, PrefixesAreDistinctPerAs) {
  const Topology t = make();
  std::set<net::Prefix> all;
  std::size_t count = 0;
  for (const auto& list : t.prefixes) {
    for (const auto& p : list) {
      EXPECT_EQ(p.family(), net::Family::kIPv4);
      all.insert(p);
      ++count;
    }
  }
  // Aggregates + their more-specifics may nest, but exact duplicates would
  // collapse into one pool entry and silently create MOAS everywhere.
  EXPECT_EQ(all.size(), count);
}

TEST_F(GeneratorTest, DeterministicForSeed) {
  const Topology a = make(2012.0, 0.02, 99);
  const Topology b = make(2012.0, 0.02, 99);
  ASSERT_EQ(a.graph.size(), b.graph.size());
  for (NodeId v = 0; v < a.graph.size(); ++v) {
    EXPECT_EQ(a.graph.node(v).asn, b.graph.node(v).asn);
    EXPECT_EQ(a.graph.node(v).neighbors.size(),
              b.graph.node(v).neighbors.size());
  }
  EXPECT_EQ(a.total_prefixes(), b.total_prefixes());
  ASSERT_EQ(a.vantage_points.size(), b.vantage_points.size());
  for (std::size_t i = 0; i < a.vantage_points.size(); ++i) {
    EXPECT_EQ(a.vantage_points[i].node, b.vantage_points[i].node);
  }
}

TEST_F(GeneratorTest, DifferentSeedsDiffer) {
  const Topology a = make(2012.0, 0.02, 1);
  const Topology b = make(2012.0, 0.02, 2);
  bool any_diff = a.graph.size() != b.graph.size();
  for (NodeId v = 0; !any_diff && v < a.graph.size() && v < b.graph.size();
       ++v) {
    any_diff = a.graph.node(v).asn != b.graph.node(v).asn;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(GeneratorTest, FaultPeersMatchEra) {
  const Topology t = make(2022.0, 0.05);
  int addpath = 0, priv = 0;
  for (const auto& vp : t.vantage_points) {
    addpath += vp.addpath_broken;
    priv += vp.private_asn_injector;
    if (vp.addpath_broken) {
      // ADD-PATH breakage is a RouteViews-collector phenomenon (A8.3.1).
      EXPECT_NE(t.collector_names[vp.collector].find("route-views"),
                std::string::npos);
    }
  }
  EXPECT_EQ(addpath, t.params.n_addpath_broken);
  EXPECT_EQ(priv, t.params.private_asn_peer ? 1 : 0);
}

TEST_F(GeneratorTest, PartialFeedShareRoughlyMatches) {
  const Topology t = make(2024.0, 0.05);
  int full = 0;
  for (const auto& vp : t.vantage_points) full += vp.share_fraction == 1.0;
  const double frac = static_cast<double>(full) / t.vantage_points.size();
  EXPECT_NEAR(frac, t.params.full_feed_frac, 0.2);
}

TEST_F(GeneratorTest, SiblingChainsShareOrg) {
  const Topology t = make(2012.0, 0.05);
  int sibling_edges = 0;
  for (NodeId v = 0; v < t.graph.size(); ++v) {
    for (const auto& nb : t.graph.node(v).neighbors) {
      if (nb.rel != Rel::kSibling) continue;
      ++sibling_edges;
      EXPECT_EQ(t.graph.node(v).org, t.graph.node(nb.node).org);
    }
  }
  EXPECT_GT(sibling_edges, 0);
}

TEST_F(GeneratorTest, FitiPrefixesUnderOneV6Block) {
  const Topology t = make(2022.0, 0.05, 1, net::Family::kIPv6);
  ASSERT_GT(t.params.fiti_ases, 0);
  const auto fiti_block = *net::Prefix::parse("240a:a000::/20");
  int fiti_prefixes = 0;
  for (const auto& list : t.prefixes) {
    for (const auto& p : list) {
      if (fiti_block.contains(p)) {
        EXPECT_EQ(p.length(), 32);
        ++fiti_prefixes;
      }
    }
  }
  EXPECT_EQ(fiti_prefixes, t.params.fiti_ases);
}

TEST_F(GeneratorTest, MoasEntriesReferenceForeignPrefixes) {
  const Topology t = make(2012.0, 0.05);
  for (const auto& [node, prefix] : t.moas_extra) {
    ASSERT_LT(node, t.graph.size());
    // The prefix must belong to some other node's allocation.
    bool found_elsewhere = false;
    for (NodeId v = 0; v < t.graph.size() && !found_elsewhere; ++v) {
      if (v == node) continue;
      for (const auto& p : t.prefixes[v]) {
        if (p == prefix) {
          found_elsewhere = true;
          break;
        }
      }
    }
    EXPECT_TRUE(found_elsewhere);
  }
}

}  // namespace
}  // namespace bgpatoms::topo
