// Golden-trace tier for the bgpatoms-trace/1 document (report/trace.h):
// one small campaign workload — simulate, archive, stream-analyze, sweep
// through the campaign cache — run twice, at 1 worker thread and at 8.
// Both traces must parse and validate against the schema, and the
// deterministic section (`counters`: record counts, section counts,
// cache hits) must serialize byte-identically across thread counts; the
// timing sections are checked for shape only (present, non-negative,
// min <= max), never for values.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bgp/archive.h"
#include "bgp/archive_view.h"
#include "core/analyze.h"
#include "core/longitudinal.h"
#include "core/parallel.h"
#include "obs/obs.h"
#include "report/cache.h"
#include "report/trace.h"

namespace bgpatoms::report {
namespace {

#if BGPATOMS_OBS_ENABLED

/// Temp file that deletes itself.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(testing::TempDir() + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

core::CampaignConfig small_campaign() {
  core::CampaignConfig config;
  config.year = 2010.0;
  config.scale = 0.01;
  config.seed = 7;
  config.with_updates = true;
  config.with_stability = true;
  return config;
}

/// The instrumented workload, identical for every thread count: a cached
/// campaign requested twice (one miss + one hit), a quarter sweep, and a
/// full streamed analysis over a v2 archive.
void run_workload(int threads, const std::string& archive_path) {
  CampaignCache cache;
  const auto campaign = cache.campaign(small_campaign());
  cache.campaign(small_campaign());  // second request: a cache hit

  core::TaskPool pool(threads);
  core::SweepOptions sweep_options;
  sweep_options.pool = &pool;
  cache.sweep({core::quarter_job(net::Family::kIPv4, 2010.0, 0.01, 7),
               core::quarter_job(net::Family::kIPv4, 2010.25, 0.01, 7)},
              sweep_options);

  bgp::write_archive_file(campaign->dataset(), archive_path);
  core::AnalysisConfig config;
  config.atoms.threads = threads;
  config.with_stability = true;
  config.with_updates = true;
  bgp::ArchiveView view(archive_path);
  core::analyze(view, &view, config);
}

/// Runs the workload from a zeroed registry and returns the trace doc.
json::Value traced_run(int threads, const std::string& archive_path) {
  obs::registry().reset_values();
  run_workload(threads, archive_path);
  TraceMeta meta;
  meta.threads = threads;
  meta.scale_multiplier = 1.0;
  return trace_to_json(obs::registry().snapshot(), meta);
}

TEST(TraceSchema, ValidatesAndCountersAreThreadCountInvariant) {
  TempFile archive("trace_schema.bga");
  const json::Value t1 = traced_run(1, archive.path());
  const json::Value t8 = traced_run(8, archive.path());

  // Serialize -> parse -> validate: the exact contract bga_bench --trace
  // enforces before exiting 0.
  for (const json::Value* t : {&t1, &t8}) {
    const std::string doc = t->serialize();
    json::Value parsed;
    ASSERT_NO_THROW(parsed = json::Value::parse(doc));
    EXPECT_EQ(validate_trace(parsed), "");
    EXPECT_EQ(parsed, *t);  // document round-trips exactly
  }

  // The deterministic section: bit-identical across thread counts.
  const json::Value* c1 = t1.find("counters");
  const json::Value* c8 = t8.find("counters");
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c8, nullptr);
  EXPECT_FALSE(c1->as_object().empty());
  EXPECT_EQ(c1->serialize(), c8->serialize());

  // The workload leaves known marks in the counters.
  const auto counter = [](const json::Value& c, const char* name) {
    const json::Value* v = c.find(name);
    return v == nullptr ? std::uint64_t{0} : v->as_uint64();
  };
  EXPECT_EQ(counter(*c1, "cache.campaign_hits"), 1u);
  EXPECT_EQ(counter(*c1, "cache.campaign_misses"), 1u);
  EXPECT_EQ(counter(*c1, "cache.quarter_misses"), 2u);
  // The sweep analyzes in-memory campaigns, so analyze counters cover a
  // superset of what the one archive pass decoded.
  EXPECT_GT(counter(*c1, "archive.snapshots_decoded"), 0u);
  EXPECT_GE(counter(*c1, "analyze.snapshots_seen"),
            counter(*c1, "archive.snapshots_decoded"));
  EXPECT_GT(counter(*c1, "analyze.records_seen"), 0u);
  EXPECT_GT(counter(*c1, "archive.sections"), 0u);
  EXPECT_GT(counter(*c1, "archive.crc_checks"), 0u);

  // Timing fields: present and well-formed in both, values unconstrained.
  for (const json::Value* t : {&t1, &t8}) {
    const json::Value* timers = t->find("timers");
    ASSERT_NE(timers, nullptr);
    EXPECT_FALSE(timers->as_array().empty());
    for (const auto& entry : timers->as_array()) {
      EXPECT_LE(entry.find("min_ns")->as_uint64(),
                entry.find("max_ns")->as_uint64());
      EXPECT_GE(entry.find("total_ns")->as_uint64(),
                entry.find("max_ns")->as_uint64());
    }
  }
}

TEST(TraceSchema, ValidatorRejectsMalformedDocuments) {
  TraceMeta meta;
  meta.threads = 1;
  const json::Value good = trace_to_json(obs::registry().snapshot(), meta);
  EXPECT_EQ(validate_trace(good), "");

  EXPECT_NE(validate_trace(json::Value(3)), "");
  EXPECT_NE(validate_trace(json::Value(json::Object{})), "");

  // Wrong schema marker.
  json::Object wrong;
  for (const auto& [k, v] : good.as_object()) {
    wrong.emplace_back(k, k == "schema" ? json::Value("bgpatoms-trace/999")
                                        : v);
  }
  EXPECT_NE(validate_trace(json::Value(std::move(wrong))), "");

  // A negative counter value (only representable via int64).
  json::Object bad_counter;
  for (const auto& [k, v] : good.as_object()) {
    bad_counter.emplace_back(
        k, k == "counters"
               ? json::Value(json::Object{{"x", json::Value(-1)}})
               : v);
  }
  EXPECT_NE(validate_trace(json::Value(std::move(bad_counter))), "");
}

#endif  // BGPATOMS_OBS_ENABLED

}  // namespace
}  // namespace bgpatoms::report
