// Tests for the atom/update correlation analysis (§3.3).
#include <gtest/gtest.h>

#include <cmath>

#include "core/update_corr.h"
#include "testutil.h"

namespace bgpatoms::core {
namespace {

using test::DatasetBuilder;

struct Fixture {
  bgp::Dataset ds;
  SanitizedSnapshot snap;
  AtomSet atoms;
};

/// Origin 1 has atoms {A,B} (same paths) and {C}; origin 2 has {D}.
Fixture standard_fixture() {
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 1")      // A
      .route("10.1.0.0/16", "100 1")      // B
      .route("10.2.0.0/16", "100 9 1")    // C
      .route("10.3.0.0/16", "100 2");     // D
  Fixture f{std::move(b.dataset()), {}, {}};
  f.snap = sanitize(f.ds, 0, test::lax_config());
  f.atoms = compute_atoms(f.snap);
  return f;
}

TEST(UpdateCorr, FullAtomUpdateCounts) {
  Fixture f = standard_fixture();
  DatasetBuilder helper;  // reuse its interning logic indirectly
  std::vector<bgp::UpdateRecord> updates;
  bgp::UpdateRecord u;
  u.announced = {f.ds.prefixes.find(*net::Prefix::parse("10.0.0.0/16")),
                 f.ds.prefixes.find(*net::Prefix::parse("10.1.0.0/16"))};
  updates.push_back(u);

  const auto corr = correlate_updates(f.atoms, updates);
  EXPECT_EQ(corr.updates_seen, 1u);
  EXPECT_DOUBLE_EQ(corr.atom.at(2), 1.0);  // the size-2 atom seen in full
}

TEST(UpdateCorr, PartialAtomUpdateCounts) {
  Fixture f = standard_fixture();
  std::vector<bgp::UpdateRecord> updates(2);
  updates[0].announced = {
      f.ds.prefixes.find(*net::Prefix::parse("10.0.0.0/16"))};
  updates[1].announced = {
      f.ds.prefixes.find(*net::Prefix::parse("10.1.0.0/16"))};
  const auto corr = correlate_updates(f.atoms, updates);
  EXPECT_DOUBLE_EQ(corr.atom.at(2), 0.0);
  EXPECT_EQ(corr.atom.n_any[2], 2u);
}

TEST(UpdateCorr, MixedFullAndPartial) {
  Fixture f = standard_fixture();
  const auto a = f.ds.prefixes.find(*net::Prefix::parse("10.0.0.0/16"));
  const auto bb = f.ds.prefixes.find(*net::Prefix::parse("10.1.0.0/16"));
  std::vector<bgp::UpdateRecord> updates(3);
  updates[0].announced = {a, bb};  // full
  updates[1].announced = {a};      // partial
  updates[2].announced = {a, bb};  // full
  const auto corr = correlate_updates(f.atoms, updates);
  EXPECT_NEAR(corr.atom.at(2), 2.0 / 3.0, 1e-9);
}

TEST(UpdateCorr, WithdrawnPrefixesCount) {
  Fixture f = standard_fixture();
  std::vector<bgp::UpdateRecord> updates(1);
  updates[0].withdrawn = {
      f.ds.prefixes.find(*net::Prefix::parse("10.0.0.0/16")),
      f.ds.prefixes.find(*net::Prefix::parse("10.1.0.0/16"))};
  const auto corr = correlate_updates(f.atoms, updates);
  EXPECT_DOUBLE_EQ(corr.atom.at(2), 1.0);
}

TEST(UpdateCorr, AnnounceAndWithdrawSamePrefixCountsOnce) {
  // Regression: a record carrying the same prefix in both the announced
  // and withdrawn lists (withdraw/re-announce packed into one message)
  // used to increment the touched-counts twice, so one prefix of a size-2
  // atom looked like a full-atom update (Pr_full spuriously 1.0).
  Fixture f = standard_fixture();
  const auto a = f.ds.prefixes.find(*net::Prefix::parse("10.0.0.0/16"));
  std::vector<bgp::UpdateRecord> updates(1);
  updates[0].announced = {a};
  updates[0].withdrawn = {a};
  const auto corr = correlate_updates(f.atoms, updates);
  EXPECT_EQ(corr.atom.n_any[2], 1u);
  EXPECT_DOUBLE_EQ(corr.atom.at(2), 0.0);  // one of two prefixes: partial
}

TEST(UpdateCorr, DuplicatePrefixWithinListCountsOnce) {
  // Same dedup rule applies to repeats inside one list.
  Fixture f = standard_fixture();
  const auto a = f.ds.prefixes.find(*net::Prefix::parse("10.0.0.0/16"));
  const auto bb = f.ds.prefixes.find(*net::Prefix::parse("10.1.0.0/16"));
  std::vector<bgp::UpdateRecord> updates(1);
  updates[0].announced = {a, a};
  updates[0].withdrawn = {bb};
  const auto corr = correlate_updates(f.atoms, updates);
  // Both prefixes touched exactly once each -> genuinely full.
  EXPECT_DOUBLE_EQ(corr.atom.at(2), 1.0);
}

TEST(UpdateCorr, AsCurveCountsWholeOrigin) {
  Fixture f = standard_fixture();
  const auto a = f.ds.prefixes.find(*net::Prefix::parse("10.0.0.0/16"));
  const auto bb = f.ds.prefixes.find(*net::Prefix::parse("10.1.0.0/16"));
  const auto c = f.ds.prefixes.find(*net::Prefix::parse("10.2.0.0/16"));
  std::vector<bgp::UpdateRecord> updates(2);
  updates[0].announced = {a, bb};      // atom full, AS(3 prefixes) partial
  updates[1].announced = {a, bb, c};   // AS full
  const auto corr = correlate_updates(f.atoms, updates);
  EXPECT_DOUBLE_EQ(corr.atom.at(2), 1.0);
  EXPECT_NEAR(corr.as_all.at(3), 0.5, 1e-9);
}

TEST(UpdateCorr, AsCategorySplit) {
  // Origin 1 has a multi-prefix atom; origin 2 (one prefix) and a crafted
  // origin 3 with two single-prefix atoms populate the "single" category.
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 1")
      .route("10.1.0.0/16", "100 1")
      .route("10.4.0.0/16", "100 5 3")
      .route("10.5.0.0/16", "100 6 3");
  Fixture f{std::move(b.dataset()), {}, {}};
  f.snap = sanitize(f.ds, 0, test::lax_config());
  f.atoms = compute_atoms(f.snap);

  const auto a = f.ds.prefixes.find(*net::Prefix::parse("10.0.0.0/16"));
  const auto bb = f.ds.prefixes.find(*net::Prefix::parse("10.1.0.0/16"));
  const auto d = f.ds.prefixes.find(*net::Prefix::parse("10.4.0.0/16"));
  const auto e = f.ds.prefixes.find(*net::Prefix::parse("10.5.0.0/16"));
  std::vector<bgp::UpdateRecord> updates(2);
  updates[0].announced = {a, bb};  // AS 1 in full (2 prefixes)
  updates[1].announced = {d};      // AS 3 partial
  (void)e;
  const auto corr = correlate_updates(f.atoms, updates);
  // AS 1 has a multi-prefix atom -> multi category, seen in full.
  EXPECT_DOUBLE_EQ(corr.as_multi.at(2), 1.0);
  // AS 3 is all-single-prefix-atoms -> single category, never full.
  EXPECT_DOUBLE_EQ(corr.as_single.at(2), 0.0);
}

TEST(UpdateCorr, UnknownPrefixesIgnored) {
  Fixture f = standard_fixture();
  std::vector<bgp::UpdateRecord> updates(1);
  updates[0].announced = {999999};
  const auto corr = correlate_updates(f.atoms, updates);
  for (std::size_t k = 1; k < corr.atom.pr.size(); ++k) {
    EXPECT_EQ(corr.atom.n_any[k], 0u);
  }
}

TEST(UpdateCorr, CurveBeyondMaxKIsNan) {
  Fixture f = standard_fixture();
  const auto corr = correlate_updates(f.atoms, {}, 4);
  EXPECT_TRUE(std::isnan(corr.atom.at(5)));
  EXPECT_TRUE(std::isnan(corr.atom.at(2)));  // no updates at all
}

TEST(UpdateCorr, SizeOneEntitiesAlwaysFull) {
  Fixture f = standard_fixture();
  std::vector<bgp::UpdateRecord> updates(1);
  updates[0].announced = {
      f.ds.prefixes.find(*net::Prefix::parse("10.3.0.0/16"))};
  const auto corr = correlate_updates(f.atoms, updates);
  EXPECT_DOUBLE_EQ(corr.atom.at(1), 1.0);
  EXPECT_DOUBLE_EQ(corr.as_all.at(1), 1.0);
}

}  // namespace
}  // namespace bgpatoms::core
