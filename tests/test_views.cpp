// Backend equivalence for the streaming analysis views (bgp/views.h,
// bgp/archive_view.h): the same campaign analyzed through an in-memory
// DatasetView and through an ArchiveView streaming a v1 or v2 BGA file
// must produce bit-identical atoms, stats, stability and update
// correlation — the contract that lets every CLI tool stream archives
// without a correctness tax. Also pins the ArchiveView residency bound:
// one snapshot section plus one 64K update chunk, independent of how many
// snapshots the archive holds.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "bgp/archive.h"
#include "bgp/archive_format.h"
#include "bgp/archive_view.h"
#include "bgp/views.h"
#include "core/analyze.h"
#include "core/longitudinal.h"
#include "obs/obs.h"

namespace bgpatoms::core {
namespace {

/// Temp file that deletes itself (tests must not leak archives).
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(testing::TempDir() + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void expect_curve_eq(const PrFullCurve& a, const PrFullCurve& b) {
  EXPECT_EQ(a.n_all, b.n_all);
  EXPECT_EQ(a.n_any, b.n_any);
  ASSERT_EQ(a.pr.size(), b.pr.size());
  for (std::size_t i = 0; i < a.pr.size(); ++i) {
    // Bit-level: NaN marks "no entity of size k", and NaN != NaN.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.pr[i]),
              std::bit_cast<std::uint64_t>(b.pr[i]))
        << "k=" << i;
  }
}

void expect_correlation_eq(const UpdateCorrelation& a,
                           const UpdateCorrelation& b) {
  EXPECT_EQ(a.updates_seen, b.updates_seen);
  expect_curve_eq(a.atom, b.atom);
  expect_curve_eq(a.as_all, b.as_all);
  expect_curve_eq(a.as_multi, b.as_multi);
  expect_curve_eq(a.as_single, b.as_single);
}

void expect_stability_eq(const StabilityResult& a, const StabilityResult& b) {
  EXPECT_EQ(a.cam, b.cam);
  EXPECT_EQ(a.mpm, b.mpm);
  EXPECT_EQ(a.atoms_t1, b.atoms_t1);
  EXPECT_EQ(a.atoms_matched_exactly, b.atoms_matched_exactly);
  EXPECT_EQ(a.prefixes_t1, b.prefixes_t1);
  EXPECT_EQ(a.prefixes_matched, b.prefixes_matched);
}

void expect_analysis_eq(const AnalysisResult& a, const AnalysisResult& b) {
  EXPECT_EQ(a.snapshots_seen, b.snapshots_seen);
  EXPECT_EQ(a.reference_index, b.reference_index);
  ASSERT_EQ(a.atom_sets.size(), b.atom_sets.size());
  for (std::size_t i = 0; i < a.atom_sets.size(); ++i) {
    EXPECT_EQ(a.atom_sets[i].atoms, b.atom_sets[i].atoms) << "snapshot " << i;
  }
  ASSERT_EQ(a.sanitized.size(), b.sanitized.size());
  for (std::size_t i = 0; i < a.sanitized.size(); ++i) {
    EXPECT_EQ(a.sanitized[i].timestamp, b.sanitized[i].timestamp);
    EXPECT_EQ(a.sanitized[i].report.full_feed_peers,
              b.sanitized[i].report.full_feed_peers);
  }
  EXPECT_EQ(a.stats, b.stats);
  ASSERT_EQ(a.stability.size(), b.stability.size());
  for (std::size_t i = 0; i < a.stability.size(); ++i) {
    EXPECT_EQ(a.stability[i].index, b.stability[i].index);
    EXPECT_EQ(a.stability[i].timestamp, b.stability[i].timestamp);
    expect_stability_eq(a.stability[i].result, b.stability[i].result);
  }
  ASSERT_EQ(a.correlation.has_value(), b.correlation.has_value());
  if (a.correlation) expect_correlation_eq(*a.correlation, *b.correlation);
  // The incrementally maintained partition follows the same stream on
  // both backends: identical drift, identical work counters.
  ASSERT_EQ(a.live.has_value(), b.live.has_value());
  if (a.live) {
    EXPECT_EQ(a.live->atoms, b.live->atoms);
    expect_stability_eq(a.live->vs_reference, b.live->vs_reference);
    EXPECT_EQ(a.live->counters, b.live->counters);
  }
}

/// One small campaign shared by the equivalence tests: 4 snapshots
/// (0/+8h/+24h/+1w) plus a 4-hour update stream.
const Campaign& campaign() {
  static const Campaign c = [] {
    CampaignConfig config;
    config.year = 2010.0;
    config.scale = 0.01;
    config.seed = 7;
    config.with_updates = true;
    config.with_stability = true;
    return run_campaign(config);
  }();
  return c;
}

AnalysisConfig full_config() {
  AnalysisConfig config;
  config.atoms.threads = 1;
  config.with_stability = true;
  config.with_updates = true;
  // Mirrors run_campaign: campaigns with update capture also maintain the
  // partition incrementally (AnalysisResult::live).
  config.incremental = true;
  config.keep_all = true;
  return config;
}

TEST(ViewEquivalence, ArchiveBackendsMatchInMemoryBitForBit) {
  const bgp::Dataset& ds = campaign().dataset();
  const AnalysisConfig config = full_config();

  bgp::DatasetView mem(ds);
  const AnalysisResult want = analyze(mem, &mem, config);
  ASSERT_TRUE(want.has_reference());
  ASSERT_EQ(want.snapshots_seen, 4u);
  ASSERT_EQ(want.stability.size(), 3u);
  ASSERT_TRUE(want.correlation.has_value());

  for (const auto version : {bgp::ArchiveVersion::kV1,
                             bgp::ArchiveVersion::kV2}) {
    TempFile file(version == bgp::ArchiveVersion::kV1 ? "views_eq_v1.bga"
                                                      : "views_eq_v2.bga");
    bgp::write_archive_file(ds, file.path(), version);

    bgp::ArchiveView streamed(file.path());
    const AnalysisResult got = analyze(streamed, &streamed, config);
    expect_analysis_eq(want, got);
  }
}

TEST(ViewEquivalence, QuarterMetricsMatchTheCampaignOverload) {
  const Campaign& c = campaign();
  const QuarterMetrics want = quarter_metrics(c, 2010.0);

  TempFile file("views_qm.bga");
  bgp::write_archive_file(c.dataset(), file.path());

  bgp::ArchiveView streamed(file.path());
  const AnalysisResult r = analyze(streamed, &streamed, full_config());
  EXPECT_EQ(want, quarter_metrics(r, 2010.0));
}

TEST(ViewEquivalence, ReferenceOnlyModeKeepsOnlyTheReference) {
  const bgp::Dataset& ds = campaign().dataset();

  AnalysisConfig config = full_config();
  bgp::DatasetView mem(ds);
  const AnalysisResult keep_all = analyze(mem, &mem, config);

  config.keep_all = false;
  TempFile file("views_ref.bga");
  bgp::write_archive_file(ds, file.path());
  bgp::ArchiveView streamed(file.path());
  const AnalysisResult lean = analyze(streamed, &streamed, config);

  // O(1) retention: one snapshot's products, everything else transient.
  EXPECT_EQ(lean.atom_sets.size(), 1u);
  EXPECT_EQ(lean.sanitized.size(), 1u);
  EXPECT_EQ(lean.snapshots_seen, keep_all.snapshots_seen);
  EXPECT_EQ(lean.reference_atoms().atoms, keep_all.reference_atoms().atoms);
  EXPECT_EQ(lean.stats, keep_all.stats);
  ASSERT_EQ(lean.stability.size(), keep_all.stability.size());
  for (std::size_t i = 0; i < lean.stability.size(); ++i) {
    EXPECT_EQ(lean.stability[i].index, keep_all.stability[i].index);
    expect_stability_eq(lean.stability[i].result, keep_all.stability[i].result);
  }
  ASSERT_TRUE(lean.correlation.has_value());
  expect_correlation_eq(*lean.correlation, *keep_all.correlation);
}

TEST(ViewEquivalence, LateReferenceBuffersEarlierSnapshots) {
  const bgp::Dataset& ds = campaign().dataset();

  // Reference snapshot 2: stability entries keep the historical order
  // (1, 2-vs-itself, 3) and match the keep_all computation exactly.
  AnalysisConfig config = full_config();
  config.reference_snapshot = 2;
  bgp::DatasetView mem(ds);
  const AnalysisResult want = analyze(mem, &mem, config);
  ASSERT_EQ(want.reference_index, 2u);
  ASSERT_EQ(want.stability.size(), 3u);
  EXPECT_EQ(want.stability[0].index, 1u);
  EXPECT_EQ(want.stability[1].index, 2u);
  EXPECT_EQ(want.stability[1].result.cam, 1.0);  // reference vs itself
  EXPECT_EQ(want.stability[2].index, 3u);

  config.keep_all = false;
  TempFile file("views_lateref.bga");
  bgp::write_archive_file(ds, file.path());
  bgp::ArchiveView streamed(file.path());
  const AnalysisResult got = analyze(streamed, &streamed, config);

  EXPECT_EQ(got.atom_sets.size(), 1u);
  EXPECT_EQ(got.reference_atoms().atoms, want.reference_atoms().atoms);
  ASSERT_EQ(got.stability.size(), want.stability.size());
  for (std::size_t i = 0; i < got.stability.size(); ++i) {
    EXPECT_EQ(got.stability[i].index, want.stability[i].index);
    expect_stability_eq(got.stability[i].result, want.stability[i].result);
  }
}

TEST(ViewEquivalence, ReferenceBeyondStreamReportsNoReference) {
  const bgp::Dataset& ds = campaign().dataset();
  for (const bool keep_all : {false, true}) {
    AnalysisConfig config;
    config.reference_snapshot = 99;
    config.keep_all = keep_all;
    bgp::DatasetView mem(ds);
    const AnalysisResult r = analyze(mem, nullptr, config);
    EXPECT_FALSE(r.has_reference()) << "keep_all=" << keep_all;
    EXPECT_EQ(r.snapshots_seen, 4u);
  }
}

// --- multi-chunk update streams ---------------------------------------------

/// Synthetic dataset whose update stream spans multiple v2 chunks
/// (> bgp::archive_detail::kUpdatesPerChunk records), exercising chunk-boundary
/// behavior in the streamed correlator.
bgp::Dataset chunked_dataset() {
  bgp::Dataset ds;
  ds.family = net::Family::kIPv4;
  ds.collectors = {"rrc00", "rrc01"};
  std::vector<bgp::PathId> paths;
  std::vector<bgp::PrefixId> prefixes;
  for (std::uint32_t i = 0; i < 64; ++i) {
    paths.push_back(ds.paths.intern(
        net::AsPath::sequence({64496 + i % 5, 3356, 15169 + i % 11})));
    prefixes.push_back(ds.prefixes.intern(
        net::Prefix(net::IpAddress::v4(0x0A000000u + (i << 8)), 24)));
  }
  for (int s = 0; s < 2; ++s) {
    bgp::Snapshot snap;
    snap.timestamp = 86400 * s;
    for (std::uint32_t pr = 0; pr < 8; ++pr) {
      bgp::PeerFeed feed;
      feed.peer = {64500 + pr, net::IpAddress::v4(0xC0000000u + pr),
                   static_cast<bgp::CollectorIndex>(pr % 2)};
      for (std::uint32_t i = 0; i < 64; ++i) {
        feed.records.push_back({prefixes[i], paths[(i + pr) % 64], 0,
                                bgp::RecordStatus::kValid});
      }
      snap.peers.push_back(std::move(feed));
    }
    ds.snapshots.push_back(std::move(snap));
  }
  const std::size_t n = bgp::archive_detail::kUpdatesPerChunk + 1000;
  for (std::size_t i = 0; i < n; ++i) {
    bgp::UpdateRecord u;
    u.timestamp = static_cast<bgp::Timestamp>(i / 4);
    u.collector = static_cast<bgp::CollectorIndex>(i % 2);
    u.peer = static_cast<bgp::PeerIndex>(i % 8);
    u.path = paths[i % 64];
    u.announced = {prefixes[i % 64]};
    if (i % 5 == 0) u.withdrawn = {prefixes[(i + 3) % 64]};
    ds.updates.push_back(std::move(u));
  }
  return ds;
}

TEST(ViewEquivalence, MultiChunkUpdateStreamCorrelatesIdentically) {
  const bgp::Dataset ds = chunked_dataset();

  AnalysisConfig config;
  config.sanitize.min_collectors = 1;
  config.atoms.threads = 1;
  config.with_updates = true;
  bgp::DatasetView mem(ds);
  const AnalysisResult want = analyze(mem, &mem, config);
  ASSERT_TRUE(want.correlation.has_value());
  EXPECT_EQ(want.correlation->updates_seen, ds.updates.size());

  TempFile file("views_chunks.bga");
  bgp::write_archive_file(ds, file.path());
  bgp::ArchiveView streamed(file.path());
  const AnalysisResult got = analyze(streamed, &streamed, config);
  ASSERT_TRUE(got.correlation.has_value());
  expect_correlation_eq(*want.correlation, *got.correlation);

  // The streamed residency bound: one snapshot section (peers * records)
  // plus one update chunk, NOT the whole update stream.
  const std::size_t snap_records =
      bgp::Dataset::record_count(ds.snapshots.front());
  EXPECT_LE(streamed.peak_resident_records(),
            snap_records + bgp::archive_detail::kUpdatesPerChunk);
  EXPECT_LT(streamed.peak_resident_records(),
            mem.peak_resident_records());
}

#if BGPATOMS_OBS_ENABLED
TEST(ViewEquivalence, InstrumentedCountersMatchAcrossBackends) {
  // The obs work counters are part of the backend-equivalence contract:
  // an ArchiveView must report exactly the records/snapshots a
  // DatasetView does — a silent double-read or skipped section shifts
  // these even when the analysis products still come out identical.
  const bgp::Dataset& ds = campaign().dataset();
  const AnalysisConfig config = full_config();
  const char* kCounters[] = {"analyze.snapshots_seen", "analyze.records_seen",
                             "analyze.update_records_seen",
                             "analyze.atom_sets_computed"};
  auto& registry = obs::registry();

  registry.reset_values();
  bgp::DatasetView mem(ds);
  analyze(mem, &mem, config);
  std::map<std::string, std::uint64_t> want;
  for (const char* name : kCounters) {
    want[name] = registry.counter(name).value();
  }
  EXPECT_GT(want["analyze.snapshots_seen"], 0u);
  EXPECT_GT(want["analyze.records_seen"], 0u);

  TempFile file("views_counters.bga");
  bgp::write_archive_file(ds, file.path());
  registry.reset_values();
  bgp::ArchiveView streamed(file.path());
  analyze(streamed, &streamed, config);
  for (const char* name : kCounters) {
    EXPECT_EQ(registry.counter(name).value(), want[name]) << name;
  }
}
#endif  // BGPATOMS_OBS_ENABLED

// --- DatasetView basics -----------------------------------------------------

TEST(DatasetView, CursorsWalkOnceAndRewind) {
  const bgp::Dataset& ds = campaign().dataset();
  bgp::DatasetView view(ds);

  std::size_t n = 0;
  while (view.next_snapshot() != nullptr) ++n;
  EXPECT_EQ(n, ds.snapshots.size());
  EXPECT_EQ(view.next_snapshot(), nullptr);

  EXPECT_EQ(view.next_chunk().size(), ds.updates.size());
  EXPECT_TRUE(view.next_chunk().empty());

  view.rewind();
  EXPECT_NE(view.next_snapshot(), nullptr);
  EXPECT_EQ(view.next_chunk().size(), ds.updates.size());
}

}  // namespace
}  // namespace bgpatoms::core
