// core::VpValue: the selection math is pinned against brute force.
//
// masked_partition / refinement_gain are verified subset-by-subset
// against a naive per-row key grouping (exhaustive over every column
// subset of a small matrix), and select_vps' determinism contract is
// pinned three ways: bit-identical across thread counts, invariant under
// column permutation (gains, fidelity curve, fingerprint, selected
// column *contents* — indices may differ only between byte-identical
// columns), and budget=unlimited reproducing the full partition
// bit-identically (fingerprint-equal to compute_atoms over the same
// snapshot). The masked IncrementalAtoms path is held in lockstep
// against both its own recompute oracle and a full-width twin.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bgp/views.h"
#include "core/atoms.h"
#include "core/incremental.h"
#include "core/vp_value.h"
#include "testutil.h"

namespace bgpatoms::core {
namespace {

using test::DatasetBuilder;

/// Eight VPs over 24 prefixes with overlapping path classes and per-VP
/// visibility gaps: small enough for exhaustive subset enumeration,
/// varied enough that different subsets induce genuinely different
/// partitions (including duplicate columns: VP 6 mirrors VP 0).
SanitizedSnapshot oracle_snapshot() {
  DatasetBuilder b;
  for (int vp = 0; vp < 8; ++vp) {
    b.peer(static_cast<net::Asn>(100 + vp));
    for (int i = 0; i < 24; ++i) {
      if (vp == 1 && i % 5 == 0) continue;  // visibility gaps
      if (vp == 4 && i % 7 == 2) continue;
      // Path class varies per VP at different granularity; VP 6 repeats
      // VP 0's table exactly (a fully redundant column).
      const int as_vp = vp == 6 ? 100 : 100 + vp;
      const int mod = vp == 6 ? 3 : 3 + vp % 4;
      b.route("10.0." + std::to_string(i) + ".0/24",
              std::to_string(as_vp) + " " + std::to_string(7 + i % mod) +
                  " 1");
    }
  }
  return sanitize(b.dataset(), 0, test::lax_config());
}

/// Naive row grouping on a column subset: distinct key-tuples.
std::size_t naive_groups(const AtomSignatureMatrix& m,
                         const std::vector<std::uint32_t>& vps) {
  std::set<std::vector<std::uint32_t>> keys;
  for (std::size_t i = 0; i < m.num_prefixes(); ++i) {
    std::vector<std::uint32_t> key;
    for (const std::uint32_t vp : vps) key.push_back(m.cell(i, vp));
    keys.insert(std::move(key));
  }
  return m.num_prefixes() == 0 ? 0 : keys.size();
}

std::vector<std::uint32_t> subset_of(unsigned mask) {
  std::vector<std::uint32_t> vps;
  for (std::uint32_t c = 0; c < 32; ++c) {
    if (mask & (1u << c)) vps.push_back(c);
  }
  return vps;
}

TEST(VpValue, MaskedPartitionMatchesNaiveGroupingOnEverySubset) {
  const auto snap = oracle_snapshot();
  const auto m = AtomSignatureMatrix::build(snap);
  ASSERT_EQ(m.num_vps(), 8u);
  const std::size_t n = m.num_prefixes();

  for (unsigned mask = 0; mask < (1u << 8); ++mask) {
    const auto vps = subset_of(mask);
    const auto labels = masked_partition(m, vps);
    ASSERT_EQ(labels.size(), n);

    // Same label iff same key tuple (pairwise, exhaustive).
    std::map<std::vector<std::uint32_t>, std::uint32_t> label_of_key;
    std::uint32_t max_label = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::uint32_t> key;
      for (const std::uint32_t vp : vps) key.push_back(m.cell(i, vp));
      const auto [it, inserted] = label_of_key.emplace(key, labels[i]);
      ASSERT_EQ(it->second, labels[i]) << "mask " << mask << " row " << i;
      if (inserted) {
        // Canonical numbering: a class first met at row i gets the next
        // unused label, so labels appear in first-encounter order.
        ASSERT_EQ(labels[i], label_of_key.size() - 1)
            << "mask " << mask << " row " << i;
      }
      max_label = std::max(max_label, labels[i]);
    }
    EXPECT_EQ(masked_groups(m, vps), naive_groups(m, vps)) << "mask " << mask;
    if (n > 0) {
      EXPECT_EQ(max_label + 1, naive_groups(m, vps));
    }
  }
}

TEST(VpValue, RefinementGainMatchesBruteForceOnEverySubset) {
  const auto snap = oracle_snapshot();
  const auto m = AtomSignatureMatrix::build(snap);

  for (unsigned mask = 0; mask < (1u << 8); ++mask) {
    const auto vps = subset_of(mask);
    const std::size_t base = masked_groups(m, vps);
    for (std::uint32_t c = 0; c < 8; ++c) {
      if (mask & (1u << c)) continue;
      auto with = vps;
      with.push_back(c);
      EXPECT_EQ(refinement_gain(m, vps, c), masked_groups(m, with) - base)
          << "mask " << mask << " candidate " << c;
    }
  }
}

TEST(VpValue, GreedyChoosesMaxGainWithLexTieBreakEveryStep) {
  const auto snap = oracle_snapshot();
  const auto m = AtomSignatureMatrix::build(snap);
  const auto selection = select_vps(m);

  std::vector<std::uint32_t> selected;
  for (const auto& step : selection.steps) {
    // Oracle the argmax: the chosen column's gain equals the maximum
    // marginal refinement over all unselected columns.
    std::size_t best_gain = 0;
    for (std::uint32_t c = 0; c < m.num_vps(); ++c) {
      if (std::find(selected.begin(), selected.end(), c) != selected.end()) {
        continue;
      }
      best_gain = std::max(best_gain, refinement_gain(m, selected, c));
    }
    EXPECT_EQ(step.gain, refinement_gain(m, selected, step.vp));
    EXPECT_EQ(step.gain, best_gain);
    EXPECT_GE(step.gain, 1u);

    // Tie-break: no unselected argmax column has lexicographically
    // smaller content than the chosen one.
    for (std::uint32_t c = 0; c < m.num_vps(); ++c) {
      if (c == step.vp ||
          std::find(selected.begin(), selected.end(), c) != selected.end()) {
        continue;
      }
      if (refinement_gain(m, selected, c) != best_gain) continue;
      bool chosen_not_greater = true;  // chosen <= c lexicographically
      for (std::size_t i = 0; i < m.num_prefixes(); ++i) {
        if (m.cell(i, step.vp) != m.cell(i, c)) {
          chosen_not_greater = m.cell(i, step.vp) < m.cell(i, c);
          break;
        }
      }
      EXPECT_TRUE(chosen_not_greater)
          << "column " << c << " ties gain but is lex-smaller than chosen "
          << step.vp;
    }
    selected.push_back(step.vp);
  }
  // Greedy ran to fidelity 1.0 and the duplicate column (VP 6 == VP 0)
  // guarantees at least one column is pure redundancy: never selected.
  EXPECT_EQ(selection.fidelity, 1.0);
  EXPECT_LT(selection.steps.size(), m.num_vps());
}

TEST(VpValue, BitIdenticalAcrossThreadCounts) {
  const auto snap = oracle_snapshot();
  const auto m = AtomSignatureMatrix::build(snap);

  VpSelectOptions base;
  base.threads = 1;
  const auto oracle = select_vps(m, base);
  for (const int threads : {2, 8}) {
    VpSelectOptions opt;
    opt.threads = threads;
    const auto got = select_vps(m, opt);
    EXPECT_EQ(got.steps, oracle.steps);
    EXPECT_EQ(got.vps, oracle.vps);
    EXPECT_EQ(got.fingerprint, oracle.fingerprint);
    EXPECT_EQ(got.fidelity, oracle.fidelity);
    EXPECT_EQ(got.full_groups, oracle.full_groups);
  }
}

TEST(VpValue, BitIdenticalAcrossThreadCountsAboveParallelGate) {
  // Enough rows to cross the scoring loop's 4096-row parallel gate so
  // multi-worker scoring actually runs.
  DatasetBuilder b;
  for (int vp = 0; vp < 5; ++vp) {
    b.peer(static_cast<net::Asn>(100 + vp));
    for (int i = 0; i < 5000; ++i) {
      if (vp == 2 && i % 13 == 0) continue;
      b.route("10." + std::to_string(i / 250) + "." +
                  std::to_string(i % 250) + ".0/24",
              std::to_string(100 + vp) + " " +
                  std::to_string(7 + i % (17 + vp)) + " 1");
    }
  }
  const auto snap = sanitize(b.dataset(), 0, test::lax_config());
  ASSERT_GE(snap.prefixes.size(), 4096u);
  const auto m = AtomSignatureMatrix::build(snap);

  VpSelectOptions base;
  base.threads = 1;
  const auto oracle = select_vps(m, base);
  ASSERT_GE(oracle.steps.size(), 2u);
  for (const int threads : {2, 8}) {
    VpSelectOptions opt;
    opt.threads = threads;
    const auto got = select_vps(m, opt);
    EXPECT_EQ(got.steps, oracle.steps);
    EXPECT_EQ(got.fingerprint, oracle.fingerprint);
  }
}

TEST(VpValue, InvariantUnderColumnPermutation) {
  const auto snap = oracle_snapshot();
  const auto m1 = AtomSignatureMatrix::build(snap);

  // A column-permuted twin: same rows, same interned cell values, VP
  // tables rotated. (SanitizedSnapshot is a plain value; permuting vps
  // permutes matrix columns and nothing else.)
  SanitizedSnapshot permuted = snap;
  std::rotate(permuted.vps.begin(), permuted.vps.begin() + 3,
              permuted.vps.end());
  const auto m2 = AtomSignatureMatrix::build(permuted);

  const auto s1 = select_vps(m1);
  const auto s2 = select_vps(m2);

  // Partition-level outputs are invariant...
  ASSERT_EQ(s1.steps.size(), s2.steps.size());
  EXPECT_EQ(s1.full_groups, s2.full_groups);
  EXPECT_EQ(s1.fidelity, s2.fidelity);
  EXPECT_EQ(s1.fingerprint, s2.fingerprint);
  for (std::size_t k = 0; k < s1.steps.size(); ++k) {
    EXPECT_EQ(s1.steps[k].gain, s2.steps[k].gain);
    EXPECT_EQ(s1.steps[k].groups, s2.steps[k].groups);
    EXPECT_EQ(s1.steps[k].fidelity, s2.steps[k].fidelity);
    EXPECT_EQ(s1.steps[k].rand_index, s2.steps[k].rand_index);
    EXPECT_EQ(s1.steps[k].split_distance, s2.steps[k].split_distance);
    // ...and so is each selected column's *content* (indices naturally
    // differ under the permutation).
    for (std::size_t i = 0; i < m1.num_prefixes(); ++i) {
      ASSERT_EQ(m1.cell(i, s1.steps[k].vp), m2.cell(i, s2.steps[k].vp))
          << "step " << k << " row " << i;
    }
  }

  // masked_partition itself is independent of the order columns are
  // listed in.
  const std::vector<std::uint32_t> fwd = {0, 2, 5};
  const std::vector<std::uint32_t> rev = {5, 0, 2};
  EXPECT_EQ(masked_partition(m1, fwd), masked_partition(m1, rev));
}

TEST(VpValue, FidelityMonotoneAndStepsPrefixInBudget) {
  const auto snap = oracle_snapshot();
  const auto m = AtomSignatureMatrix::build(snap);

  double prev = 0.0;
  std::vector<VpStep> prev_steps;
  for (std::size_t budget = 1; budget <= m.num_vps(); ++budget) {
    VpSelectOptions opt;
    opt.budget = budget;
    const auto got = select_vps(m, opt);
    EXPECT_LE(got.steps.size(), budget);
    EXPECT_GE(got.fidelity, prev) << "budget " << budget;
    // Greedy is incremental: budget b's steps are a prefix of b+1's.
    ASSERT_GE(got.steps.size(), prev_steps.size());
    for (std::size_t k = 0; k < prev_steps.size(); ++k) {
      EXPECT_EQ(got.steps[k], prev_steps[k]) << "budget " << budget;
    }
    // Within one selection the curve is monotone too (each step splits).
    for (std::size_t k = 1; k < got.steps.size(); ++k) {
      EXPECT_GT(got.steps[k].fidelity, got.steps[k - 1].fidelity);
      EXPECT_GT(got.steps[k].groups, got.steps[k - 1].groups);
      EXPECT_LT(got.steps[k].split_distance, got.steps[k - 1].split_distance);
    }
    prev = got.fidelity;
    prev_steps = got.steps;
  }
}

TEST(VpValue, UnlimitedBudgetReproducesFullPartitionBitIdentically) {
  const auto snap = oracle_snapshot();
  const auto m = AtomSignatureMatrix::build(snap);
  const auto selection = select_vps(m);

  ASSERT_EQ(selection.fidelity, 1.0);
  EXPECT_EQ(selection.steps.back().split_distance, 0u);

  // The selection's fingerprint is the full partition's, under the same
  // encoding the batch kernels and IncrementalAtoms use.
  const AtomSet full = compute_atoms(snap);
  EXPECT_EQ(selection.full_groups, full.atoms.size());
  EXPECT_EQ(selection.fingerprint, partition_fingerprint(full));
  EXPECT_EQ(selection.fingerprint,
            masked_partition_fingerprint(m, selection.vps));

  // Masked compute_atoms over the selected subset: same partition.
  AtomOptions masked;
  masked.vp_subset = selection.vps;
  const AtomSet subset_atoms = compute_atoms(snap, masked);
  EXPECT_EQ(subset_atoms.atoms.size(), full.atoms.size());
  EXPECT_EQ(partition_fingerprint(subset_atoms), selection.fingerprint);
  EXPECT_EQ(subset_atoms.atom_of, full.atom_of);
}

TEST(VpValue, TieBreakPrefersLexSmallerColumnThenSmallerIndex) {
  // Two single-prefix columns with equal gain but different content: the
  // one whose column reads lexicographically smaller (absent at row 0)
  // must win the first pick.
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 1");  // column [p, 0]
  b.peer(200).route("10.1.0.0/16", "200 1");  // column [0, p]
  const auto snap = sanitize(b.dataset(), 0, test::lax_config());
  const auto m = AtomSignatureMatrix::build(snap);
  const auto selection = select_vps(m);
  ASSERT_FALSE(selection.steps.empty());
  EXPECT_EQ(selection.steps[0].vp, 1u);  // [0, p] < [p, 0]

  // Byte-identical columns: the smaller index wins, and only one of the
  // twins is ever selected.
  DatasetBuilder b2;
  b2.peer(100).route("10.0.0.0/16", "7 1").route("10.1.0.0/16", "7 2");
  b2.peer(100, 1).route("10.0.0.0/16", "7 1").route("10.1.0.0/16", "7 2");
  const auto snap2 = sanitize(b2.dataset(), 0, test::lax_config());
  ASSERT_EQ(snap2.vps.size(), 2u);
  const auto m2 = AtomSignatureMatrix::build(snap2);
  const auto sel2 = select_vps(m2);
  ASSERT_EQ(sel2.steps.size(), 1u);
  EXPECT_EQ(sel2.steps[0].vp, 0u);
  EXPECT_EQ(sel2.fidelity, 1.0);
}

TEST(VpValue, RandIndexAndSplitDistanceAgainstDefinition) {
  const auto snap = oracle_snapshot();
  const auto m = AtomSignatureMatrix::build(snap);
  const auto selection = select_vps(m);
  std::vector<std::uint32_t> all(m.num_vps());
  for (std::uint32_t c = 0; c < m.num_vps(); ++c) all[c] = c;
  const auto full = masked_partition(m, all);

  std::vector<std::uint32_t> selected;
  for (const auto& step : selection.steps) {
    selected.push_back(step.vp);
    const auto labels = masked_partition(m, selected);
    // split_distance: classes still missing vs the full partition.
    EXPECT_EQ(step.split_distance, selection.full_groups - step.groups);
    // Rand index per definition: agreeing pairs / all pairs.
    const std::size_t n = m.num_prefixes();
    std::uint64_t agree = 0, total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        ++total;
        const bool together_sel = labels[i] == labels[j];
        const bool together_full = full[i] == full[j];
        if (together_sel == together_full) ++agree;
      }
    }
    EXPECT_DOUBLE_EQ(step.rand_index,
                     static_cast<double>(agree) / static_cast<double>(total));
  }
}

TEST(VpValue, EmptyAndDegenerateMatrices) {
  DatasetBuilder b;
  b.peer(100);
  const auto snap = sanitize(b.dataset(), 0, test::lax_config());
  const auto m = AtomSignatureMatrix::build(snap);
  const auto selection = select_vps(m);
  EXPECT_TRUE(selection.steps.empty());
  EXPECT_TRUE(selection.vps.empty());
  EXPECT_EQ(selection.full_groups, 0u);
  EXPECT_EQ(selection.fidelity, 1.0);

  // One prefix everywhere: the zero-column partition is already full.
  DatasetBuilder b2;
  b2.peer(100).route("10.0.0.0/16", "100 1");
  b2.peer(200).route("10.0.0.0/16", "200 1");
  const auto snap2 = sanitize(b2.dataset(), 0, test::lax_config());
  const auto m2 = AtomSignatureMatrix::build(snap2);
  const auto sel2 = select_vps(m2);
  EXPECT_TRUE(sel2.steps.empty());
  EXPECT_EQ(sel2.full_groups, 1u);
  EXPECT_EQ(sel2.fidelity, 1.0);
}

TEST(VpValue, OutOfRangeColumnsThrow) {
  const auto snap = oracle_snapshot();
  const auto m = AtomSignatureMatrix::build(snap);
  const std::vector<std::uint32_t> bad = {0, 99};
  EXPECT_THROW(masked_partition(m, bad), std::invalid_argument);
  EXPECT_THROW(masked_groups(m, bad), std::invalid_argument);
  EXPECT_THROW(refinement_gain(m, {}, 99), std::invalid_argument);
}

// ------------------------------------------------- masked incremental

TEST(VpValue, MaskedIncrementalTracksMaskedBatchKernels) {
  // Seed + update churn (mirrors test_incremental's dataset), maintained
  // twice: full width and masked to columns {0, 2}. At every chunk
  // boundary the masked partition must equal a masked batch recompute
  // over the full twin's maintained tables, and the masked atoms must be
  // bit-identical to compute_atoms over the masked rebuild.
  DatasetBuilder b;
  b.peer(100)
      .route("10.0.0.0/16", "100 1")
      .route("10.1.0.0/16", "100 1")
      .route("10.2.0.0/16", "100 2")
      .route("10.3.0.0/16", "100 3 1");
  b.peer(200)
      .route("10.0.0.0/16", "200 1")
      .route("10.1.0.0/16", "200 1")
      .route("10.2.0.0/16", "200 2")
      .route("10.3.0.0/16", "200 3 1");
  b.peer(300)
      .route("10.0.0.0/16", "300 1")
      .route("10.1.0.0/16", "300 1")
      .route("10.2.0.0/16", "300 2")
      .route("10.3.0.0/16", "300 1");
  b.update(10, 0, "100 9 1", {"10.0.0.0/16"});
  b.update(20, 1, "200 2 2", {"10.2.0.0/16"});  // unselected peer: ignored
  b.update(30, 2, "", {}, {"10.3.0.0/16"});
  b.update(40, 2, "300 4 1", {"10.3.0.0/16"});
  b.update(50, 1, "200 1", {"10.1.0.0/16"}, {"10.1.0.0/16"});
  b.update(60, 0, "100 1", {"10.0.0.0/16"});
  b.update(70, 2, "300 2", {"10.2.0.0/16"});

  auto& ds = b.dataset();
  const auto seed = sanitize(ds, 0, test::lax_config());
  ASSERT_EQ(seed.vps.size(), 3u);

  AtomOptions masked;
  masked.vp_subset = {0, 2};
  IncrementalAtoms inc_masked(seed, ds.paths, masked);
  IncrementalAtoms inc_full(seed, ds.paths);
  EXPECT_EQ(inc_masked.num_vps(), 2u);

  const auto expect_boundary = [&] {
    // Masked atoms == compute_atoms over the masked rebuilt tables.
    const AtomSet live = inc_masked.atoms();
    const SanitizedSnapshot rebuilt = inc_masked.rebuild_snapshot();
    ASSERT_EQ(rebuilt.vps.size(), 2u);
    EXPECT_EQ(rebuilt.vps[0].peer.asn, 100u);
    EXPECT_EQ(rebuilt.vps[1].peer.asn, 300u);
    const AtomSet recomputed = compute_atoms(rebuilt);
    EXPECT_EQ(live.atoms, recomputed.atoms);
    EXPECT_EQ(live.atom_of, recomputed.atom_of);
    EXPECT_EQ(live.atoms_by_origin, recomputed.atoms_by_origin);

    // Masked partition == masking the full twin's maintained tables.
    const SanitizedSnapshot full_rebuilt = inc_full.rebuild_snapshot();
    const auto full_matrix = AtomSignatureMatrix::build(full_rebuilt);
    const std::vector<std::uint32_t> cols = {0, 2};
    EXPECT_EQ(inc_masked.partition_fingerprint(),
              masked_partition_fingerprint(full_matrix, cols));
  };

  expect_boundary();
  for (std::size_t i = 0; i < ds.updates.size(); ++i) {
    const std::span<const bgp::UpdateRecord> one(&ds.updates[i], 1);
    inc_masked.apply(one);
    inc_full.apply(one);
    expect_boundary();
  }

  // The unselected peer's churn never touched the masked matrix.
  EXPECT_LT(inc_masked.counters().cell_writes,
            inc_full.counters().cell_writes);
}

TEST(VpValue, IncrementalRejectsMalformedSubsets) {
  DatasetBuilder b;
  b.peer(100).route("10.0.0.0/16", "100 1");
  b.peer(200).route("10.0.0.0/16", "200 1");
  auto& ds = b.dataset();
  const auto seed = sanitize(ds, 0, test::lax_config());

  for (const std::vector<std::uint32_t>& bad :
       {std::vector<std::uint32_t>{0, 5}, std::vector<std::uint32_t>{1, 0},
        std::vector<std::uint32_t>{0, 0}}) {
    AtomOptions opt;
    opt.vp_subset = bad;
    EXPECT_THROW(IncrementalAtoms(seed, ds.paths, opt), std::invalid_argument);
  }
}

}  // namespace
}  // namespace bgpatoms::core
