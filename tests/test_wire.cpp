// Tests for the RFC 4271 UPDATE wire codec.
#include <gtest/gtest.h>

#include "bgp/nlri.h"
#include "bgp/wire.h"
#include "routing/simulator.h"

namespace bgpatoms::bgp {
namespace {

struct Fixture {
  Dataset ds;
  PathId path;
  CommunitySetId comms;

  explicit Fixture(net::Family family = net::Family::kIPv4) {
    ds.family = family;
    ds.collectors = {"rrc00"};
    path = ds.paths.intern(*net::AsPath::parse("64496 3356 15169"));
    comms = ds.communities.intern(
        {make_community(3356, 100), make_community(3257, 2990)});
  }

  PrefixId prefix(const char* text) {
    return ds.prefixes.intern(*net::Prefix::parse(text));
  }

  UpdateRecord record(std::vector<PrefixId> announced,
                      std::vector<PrefixId> withdrawn = {}) {
    UpdateRecord rec;
    rec.path = announced.empty() ? 0 : path;
    rec.communities = announced.empty() ? 0 : comms;
    rec.announced = std::move(announced);
    rec.withdrawn = std::move(withdrawn);
    return rec;
  }
};

TEST(Wire, HeaderLayout) {
  Fixture f;
  const auto msg = encode_update(f.ds, f.record({f.prefix("8.8.8.0/24")}));
  ASSERT_GE(msg.size(), 19u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(msg[i], 0xFF) << "marker byte " << i;
  const std::size_t length = (std::size_t{msg[16]} << 8) | msg[17];
  EXPECT_EQ(length, msg.size());
  EXPECT_EQ(msg[18], 2);  // UPDATE
  EXPECT_EQ(peek_update_length(msg), msg.size());
}

TEST(Wire, RoundTripV4Announcement) {
  Fixture f;
  const auto rec =
      f.record({f.prefix("8.8.8.0/24"), f.prefix("10.0.0.0/8"),
                f.prefix("192.0.2.0/25")});
  const auto decoded = decode_update(encode_update(f.ds, rec));

  ASSERT_EQ(decoded.announced.size(), 3u);
  EXPECT_EQ(decoded.announced[0], *net::Prefix::parse("8.8.8.0/24"));
  EXPECT_EQ(decoded.announced[1], *net::Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(decoded.announced[2], *net::Prefix::parse("192.0.2.0/25"));
  EXPECT_EQ(decoded.path, *net::AsPath::parse("64496 3356 15169"));
  EXPECT_EQ(decoded.communities,
            f.ds.communities.get(f.comms));
  EXPECT_EQ(decoded.origin, WireOrigin::kIgp);
  ASSERT_TRUE(decoded.next_hop.has_value());
  EXPECT_TRUE(decoded.next_hop->is_v4());
}

TEST(Wire, RoundTripV4Withdrawal) {
  Fixture f;
  const auto rec = f.record({}, {f.prefix("8.8.8.0/24")});
  const auto msg = encode_update(f.ds, rec);
  const auto decoded = decode_update(msg);
  ASSERT_EQ(decoded.withdrawn.size(), 1u);
  EXPECT_EQ(decoded.withdrawn[0], *net::Prefix::parse("8.8.8.0/24"));
  EXPECT_TRUE(decoded.announced.empty());
  EXPECT_TRUE(decoded.path.empty());
}

TEST(Wire, RoundTripV6ViaMpReach) {
  Fixture f(net::Family::kIPv6);
  const auto rec = f.record({f.prefix("2001:db8::/32"),
                             f.prefix("2001:db8:1::/48")},
                            {f.prefix("2001:db9::/32")});
  const auto decoded =
      decode_update(encode_update(f.ds, rec), net::Family::kIPv6);
  ASSERT_EQ(decoded.announced.size(), 2u);
  EXPECT_EQ(decoded.announced[0], *net::Prefix::parse("2001:db8::/32"));
  EXPECT_EQ(decoded.announced[1], *net::Prefix::parse("2001:db8:1::/48"));
  ASSERT_EQ(decoded.withdrawn.size(), 1u);
  EXPECT_EQ(decoded.withdrawn[0], *net::Prefix::parse("2001:db9::/32"));
  ASSERT_TRUE(decoded.next_hop.has_value());
  EXPECT_FALSE(decoded.next_hop->is_v4());
}

TEST(Wire, ExplicitNextHop) {
  Fixture f;
  const auto rec = f.record({f.prefix("8.8.8.0/24")});
  const auto decoded = decode_update(
      encode_update(f.ds, rec, net::IpAddress::v4(0x0A0B0C0DU)));
  EXPECT_EQ(decoded.next_hop, net::IpAddress::v4(0x0A0B0C0DU));
}

TEST(Wire, AsSetSegmentSurvives) {
  Fixture f;
  f.path = f.ds.paths.intern(*net::AsPath::parse("64496 174 [2914 3257]"));
  const auto rec = f.record({f.prefix("8.8.8.0/24")});
  const auto decoded = decode_update(encode_update(f.ds, rec));
  EXPECT_EQ(decoded.path, *net::AsPath::parse("64496 174 [2914 3257]"));
}

TEST(Wire, LongPrependedPathNeedsExtendedLength) {
  // >63 four-byte ASNs exceeds 255 bytes of AS_PATH: exercises the
  // extended-length attribute encoding.
  Fixture f;
  std::vector<net::Asn> hops(80, 64496);
  hops.push_back(15169);
  f.path = f.ds.paths.intern(net::AsPath::sequence(hops));
  const auto rec = f.record({f.prefix("8.8.8.0/24")});
  const auto decoded = decode_update(encode_update(f.ds, rec));
  EXPECT_EQ(decoded.path.flat().size(), 81u);
  EXPECT_EQ(decoded.path.origin(), 15169u);
}

TEST(Wire, FourOctetAsns) {
  Fixture f;
  f.path = f.ds.paths.intern(net::AsPath::sequence({64496, 396161, 4200000001u}));
  const auto rec = f.record({f.prefix("8.8.8.0/24")});
  const auto decoded = decode_update(encode_update(f.ds, rec));
  EXPECT_EQ(decoded.path.flat(),
            (std::vector<net::Asn>{64496, 396161, 4200000001u}));
}

TEST(Wire, PackedMessagesAlwaysFitTheWire) {
  // The nlri.h size estimates must be conservative: every record produced
  // by pack_updates must encode within 4096 bytes.
  Fixture f;
  std::vector<PrefixId> many;
  for (int i = 0; i < 3000; ++i) {
    many.push_back(f.prefix(
        ("10." + std::to_string(i / 250) + "." + std::to_string(i % 250) +
         ".0/24")
            .c_str()));
  }
  const auto records =
      pack_updates(f.ds, 0, 0, 0, f.path, f.comms, many, {});
  ASSERT_GT(records.size(), 1u);
  for (const auto& rec : records) {
    const auto msg = encode_update(f.ds, rec);
    EXPECT_LE(msg.size(), kMaxMessageSize);
  }
}

TEST(Wire, RejectsCorruptMarker) {
  Fixture f;
  auto msg = encode_update(f.ds, f.record({f.prefix("8.8.8.0/24")}));
  msg[3] = 0x00;
  EXPECT_THROW(decode_update(msg), WireError);
}

TEST(Wire, RejectsTruncation) {
  Fixture f;
  const auto msg = encode_update(f.ds, f.record({f.prefix("8.8.8.0/24")}));
  EXPECT_THROW(decode_update(std::span<const std::uint8_t>(msg.data(),
                                                           msg.size() - 3)),
               WireError);
  EXPECT_THROW(peek_update_length(
                   std::span<const std::uint8_t>(msg.data(), 10)),
               WireError);
}

TEST(Wire, RejectsNonUpdateType) {
  Fixture f;
  auto msg = encode_update(f.ds, f.record({f.prefix("8.8.8.0/24")}));
  msg[18] = 1;  // OPEN
  EXPECT_THROW(decode_update(msg), WireError);
}

TEST(Wire, RejectsBadNlriLength) {
  Fixture f;
  auto msg = encode_update(f.ds, f.record({f.prefix("8.8.8.0/24")}));
  msg[msg.size() - 4] = 60;  // /60 is invalid for IPv4
  EXPECT_THROW(decode_update(msg), WireError);
}

TEST(Wire, RoundTripSimulatedStream) {
  // Every update the simulator emits encodes and decodes losslessly.
  routing::Simulator sim(
      topo::generate_topology(topo::era_params_v4(2016.0, 0.005), 3));
  sim.capture();
  sim.emit_updates(routing::kHour);
  const auto& ds = sim.dataset();
  ASSERT_GT(ds.updates.size(), 0u);
  std::size_t checked = 0;
  for (const auto& rec : ds.updates) {
    if (checked++ > 500) break;
    const auto decoded = decode_update(encode_update(ds, rec));
    ASSERT_EQ(decoded.announced.size(), rec.announced.size());
    ASSERT_EQ(decoded.withdrawn.size(), rec.withdrawn.size());
    for (std::size_t i = 0; i < rec.announced.size(); ++i) {
      EXPECT_EQ(decoded.announced[i], ds.prefixes.get(rec.announced[i]));
    }
    if (!rec.announced.empty()) {
      EXPECT_EQ(decoded.path, ds.paths.get(rec.path));
    }
  }
}

}  // namespace
}  // namespace bgpatoms::bgp
