// Property tests for the wire and MRT codecs: random structured inputs
// must round-trip exactly, and random byte mutations must never crash the
// decoders (they throw typed errors or decode something harmlessly).
#include <gtest/gtest.h>

#include "bgp/mrt.h"
#include "bgp/wire.h"
#include "net/rng.h"

namespace bgpatoms::bgp {
namespace {

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

Dataset random_dataset(Rng& rng, net::Family family, int n_prefixes) {
  Dataset ds;
  ds.family = family;
  ds.collectors = {"rrc00"};
  Snapshot snap;
  snap.timestamp = 1'000'000'000 + static_cast<Timestamp>(rng.next_below(1u << 20));
  PeerFeed feed;
  feed.peer = {static_cast<net::Asn>(1 + rng.next_below(1u << 18)),
               family == net::Family::kIPv4
                   ? net::IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64()))
                   : net::IpAddress::v6(rng.next_u64(), rng.next_u64()),
               0};

  for (int i = 0; i < n_prefixes; ++i) {
    // Random path with occasional prepending and AS_SET tails.
    std::vector<net::Asn> hops;
    const int len = 1 + static_cast<int>(rng.next_below(6));
    for (int k = 0; k < len; ++k) {
      const auto asn = static_cast<net::Asn>(1 + rng.next_below(1u << 16));
      hops.push_back(asn);
      if (rng.chance(0.2)) hops.push_back(asn);  // prepend
    }
    net::AsPath path = net::AsPath::sequence(hops);
    if (rng.chance(0.1)) {
      path = net::AsPath::from_segments(
          {{net::SegmentType::kSequence, hops},
           {net::SegmentType::kSet,
            {static_cast<net::Asn>(1 + rng.next_below(1000)),
             static_cast<net::Asn>(2000 + rng.next_below(1000))}}});
    }
    std::vector<Community> comms;
    for (std::uint64_t k = 0; k < rng.next_below(4); ++k) {
      comms.push_back(static_cast<Community>(rng.next_u64()));
    }
    const net::Prefix prefix =
        family == net::Family::kIPv4
            ? net::Prefix(net::IpAddress::v4(
                              static_cast<std::uint32_t>(rng.next_u64())),
                          1 + static_cast<int>(rng.next_below(32)))
            : net::Prefix(net::IpAddress::v6(rng.next_u64(), rng.next_u64()),
                          1 + static_cast<int>(rng.next_below(64)));
    RibRecord rec;
    rec.prefix = ds.prefixes.intern(prefix);
    rec.path = ds.paths.intern(path);
    rec.communities = ds.communities.intern(comms);
    feed.records.push_back(rec);
  }
  snap.peers.push_back(std::move(feed));
  ds.snapshots.push_back(std::move(snap));
  return ds;
}

TEST_P(CodecFuzz, UpdateRoundTripRandomRecords) {
  Rng rng(GetParam());
  for (net::Family family : {net::Family::kIPv4, net::Family::kIPv6}) {
    Dataset ds = random_dataset(rng, family, 40);
    // Build update records from random subsets of the table.
    const auto& records = ds.snapshots[0].peers[0].records;
    for (int trial = 0; trial < 20; ++trial) {
      UpdateRecord u;
      u.path = records[rng.next_below(records.size())].path;
      u.communities = records[rng.next_below(records.size())].communities;
      for (std::uint64_t k = 0; k < 1 + rng.next_below(5); ++k) {
        u.announced.push_back(records[rng.next_below(records.size())].prefix);
      }
      if (family == net::Family::kIPv4) {
        for (std::uint64_t k = 0; k < rng.next_below(3); ++k) {
          u.withdrawn.push_back(
              records[rng.next_below(records.size())].prefix);
        }
      }
      const auto decoded = decode_update(encode_update(ds, u), family);
      ASSERT_EQ(decoded.announced.size(), u.announced.size());
      for (std::size_t i = 0; i < u.announced.size(); ++i) {
        EXPECT_EQ(decoded.announced[i], ds.prefixes.get(u.announced[i]));
      }
      EXPECT_EQ(decoded.path, ds.paths.get(u.path));
      EXPECT_EQ(decoded.communities, ds.communities.get(u.communities));
    }
  }
}

TEST_P(CodecFuzz, MrtRoundTripRandomTables) {
  Rng rng(GetParam() ^ 0xabcdULL);
  for (net::Family family : {net::Family::kIPv4, net::Family::kIPv6}) {
    const Dataset ds = random_dataset(rng, family, 60);
    const Dataset back = read_mrt(write_mrt_rib(ds, 0, 0));
    ASSERT_EQ(back.snapshots.size(), 1u);
    ASSERT_EQ(back.snapshots[0].peers.size(), 1u);
    // MRT groups by prefix: same record multiset, possibly reordered and
    // with duplicate-prefix rows collapsed per (prefix, peer) pair kept.
    EXPECT_EQ(back.snapshots[0].peers[0].records.size(),
              ds.snapshots[0].peers[0].records.size());
    // Spot-check: every original (prefix, path) pair survives.
    for (const auto& rec : ds.snapshots[0].peers[0].records) {
      const auto& want_prefix = ds.prefixes.get(rec.prefix);
      const auto& want_path = ds.paths.get(rec.path);
      bool found = false;
      for (const auto& got : back.snapshots[0].peers[0].records) {
        if (back.prefixes.get(got.prefix) == want_prefix &&
            back.paths.get(got.path) == want_path) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << want_prefix.to_string();
    }
  }
}

TEST_P(CodecFuzz, MutatedUpdateNeverCrashes) {
  Rng rng(GetParam() ^ 0x5555ULL);
  Dataset ds = random_dataset(rng, net::Family::kIPv4, 20);
  UpdateRecord u;
  u.path = ds.snapshots[0].peers[0].records[0].path;
  u.announced = {ds.snapshots[0].peers[0].records[0].prefix,
                 ds.snapshots[0].peers[0].records[1].prefix};
  const auto msg = encode_update(ds, u);
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = msg;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      const auto decoded = decode_update(mutated);
      (void)decoded;  // harmless decode is fine
    } catch (const WireError&) {
      // typed rejection is fine
    }
  }
}

TEST_P(CodecFuzz, MutatedMrtNeverCrashes) {
  Rng rng(GetParam() ^ 0x7777ULL);
  const Dataset ds = random_dataset(rng, net::Family::kIPv4, 20);
  const auto bytes = write_mrt_rib(ds, 0, 0);
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = bytes;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      const auto back = read_mrt(mutated);
      (void)back;
    } catch (const MrtError&) {
    } catch (const WireError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(1, 2, 3, 7, 11));

}  // namespace
}  // namespace bgpatoms::bgp
