// Shared helpers for the core-analysis tests: a fluent builder for small
// hand-crafted datasets where every peer's table is spelled out.
#pragma once

#include <string>
#include <vector>

#include "bgp/dataset.h"
#include "core/atoms.h"
#include "core/sanitize.h"

namespace bgpatoms::test {

class DatasetBuilder {
 public:
  explicit DatasetBuilder(net::Family family = net::Family::kIPv4) {
    ds_.family = family;
  }

  DatasetBuilder& collector(std::string name) {
    ds_.collectors.push_back(std::move(name));
    return *this;
  }

  /// Starts a new peer feed in the current snapshot.
  DatasetBuilder& peer(net::Asn asn, std::uint16_t collector = 0) {
    ensure_snapshot();
    bgp::PeerFeed feed;
    feed.peer.asn = asn;
    // Address derived from (asn, collector) so peer identities stay
    // stable across snapshots of one dataset.
    const std::uint32_t suffix = asn * 8 + collector + 1;
    feed.peer.address = ds_.family == net::Family::kIPv4
                            ? net::IpAddress::v4(0x0A000000u + suffix)
                            : net::IpAddress::v6(0x20010db8'0000'0000ULL,
                                                 suffix);
    feed.peer.collector = collector;
    ds_.snapshots.back().peers.push_back(std::move(feed));
    return *this;
  }

  /// Adds a route to the current peer: textual prefix + textual AS path.
  DatasetBuilder& route(const std::string& prefix, const std::string& path,
                        bgp::RecordStatus status = bgp::RecordStatus::kValid) {
    auto& feed = ds_.snapshots.back().peers.back();
    bgp::RibRecord rec;
    rec.prefix = ds_.prefixes.intern(*net::Prefix::parse(prefix));
    rec.path = ds_.paths.intern(*net::AsPath::parse(path));
    rec.status = status;
    feed.records.push_back(rec);
    return *this;
  }

  /// Starts a new snapshot (first one is implicit).
  DatasetBuilder& snapshot(bgp::Timestamp t) {
    ds_.snapshots.push_back(bgp::Snapshot{t, {}});
    return *this;
  }

  /// Appends an update record (peer index refers to snapshot 0's order).
  DatasetBuilder& update(bgp::Timestamp t, bgp::PeerIndex peer,
                         const std::string& path,
                         std::vector<std::string> announced,
                         std::vector<std::string> withdrawn = {}) {
    bgp::UpdateRecord u;
    u.timestamp = t;
    u.peer = peer;
    u.collector = 0;
    u.path = path.empty() ? 0 : ds_.paths.intern(*net::AsPath::parse(path));
    for (const auto& p : announced) {
      u.announced.push_back(ds_.prefixes.intern(*net::Prefix::parse(p)));
    }
    for (const auto& p : withdrawn) {
      u.withdrawn.push_back(ds_.prefixes.intern(*net::Prefix::parse(p)));
    }
    ds_.updates.push_back(std::move(u));
    return *this;
  }

  bgp::Dataset& dataset() { return ds_; }

 private:
  void ensure_snapshot() {
    if (ds_.snapshots.empty()) ds_.snapshots.push_back(bgp::Snapshot{0, {}});
    if (ds_.collectors.empty()) ds_.collectors.push_back("rrc00");
  }

  bgp::Dataset ds_;
};

/// Sanitize with thresholds relaxed so tiny hand-built tables survive.
inline core::SanitizeConfig lax_config() {
  core::SanitizeConfig config;
  config.min_collectors = 1;
  config.min_peer_ases = 1;
  config.full_feed_only = false;
  config.remove_abnormal_peers = false;
  return config;
}

/// Lax thresholds but with abnormal-peer detection still active.
inline core::SanitizeConfig lax_config_with_abnormal() {
  core::SanitizeConfig config = lax_config();
  config.remove_abnormal_peers = true;
  return config;
}

}  // namespace bgpatoms::test
