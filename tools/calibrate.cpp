// Internal calibration harness: prints the Table-1 shape metrics for a year.
#include <cstdio>
#include <cstdlib>
#include "core/atoms.h"
#include "core/sanitize.h"
#include "core/stats.h"
#include "core/formation.h"
#include "routing/simulator.h"
#include "topo/topology.h"
using namespace bgpatoms;
int main(int argc, char** argv) {
  const double year = argc > 1 ? std::atof(argv[1]) : 2024.75;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.02;
  const int v6 = argc > 3 ? std::atoi(argv[3]) : 0;
  const auto era = v6 ? topo::era_params_v6(year, scale) : topo::era_params_v4(year, scale);
  routing::Simulator sim(topo::generate_topology(era, 42));
  sim.capture();
  auto snap = core::sanitize(sim.dataset(), 0);
  auto atoms = core::compute_atoms(snap);
  auto s = core::general_stats(atoms);
  auto f = core::formation_distance(atoms);
  std::printf("year %.2f scale %.3f fam v%d: pfx=%zu as=%zu atoms=%zu atoms/AS=%.2f ppa=%.2f\n",
              year, scale, v6?6:4, s.prefixes, s.ases, s.atoms,
              (double)s.atoms/s.ases, (double)s.prefixes/s.ases);
  std::printf("  1atomAS=%.1f%% 1pfxAtom=%.1f%% mean=%.2f p99=%zu max=%zu\n",
              100*s.one_atom_as_share(), 100*s.one_prefix_atom_share(),
              s.mean_atom_size, s.p99_atom_size, s.largest_atom_size);
  std::printf("  formed@d: 1=%.0f%% 2=%.0f%% 3=%.0f%% 4=%.0f%% 5=%.0f%%  causes(d1): only=%.0f%% vis=%.0f%% prep=%.0f%%\n",
              100*f.share_at(1), 100*f.share_at(2), 100*f.share_at(3), 100*f.share_at(4), 100*f.share_at(5),
              100*f.cause_share(core::DistanceOneCause::kOnlyAtomOfOrigin),
              100*f.cause_share(core::DistanceOneCause::kUniquePeerSet),
              100*f.cause_share(core::DistanceOneCause::kPrepending));
  return 0;
}
