// Calibration harness for stability + update correlation.
#include <cstdio>
#include <cstdlib>
#include "core/longitudinal.h"
using namespace bgpatoms;
int main(int argc, char** argv) {
  core::CampaignConfig cfg;
  cfg.year = argc > 1 ? std::atof(argv[1]) : 2024.75;
  cfg.scale = argc > 2 ? std::atof(argv[2]) : 0.02;
  cfg.family = (argc > 3 && std::atoi(argv[3])) ? net::Family::kIPv6 : net::Family::kIPv4;
  cfg.seed = 7;
  cfg.with_stability = true;
  cfg.with_updates = true;
  auto c = core::run_campaign(cfg);
  std::printf("year %.2f: atoms=%zu events=%zu\n", cfg.year, c.atoms().atoms.size(), c.events_applied);
  std::printf("  CAM/MPM 8h=%.1f/%.1f 24h=%.1f/%.1f 1w=%.1f/%.1f\n",
    100*c.stability_8h->cam, 100*c.stability_8h->mpm,
    100*c.stability_24h->cam, 100*c.stability_24h->mpm,
    100*c.stability_1w->cam, 100*c.stability_1w->mpm);
  std::printf("  updates=%zu PrFull atom k=2..6:", c.correlation->updates_seen);
  for (int k=2;k<=6;++k) std::printf(" %.0f", 100*c.correlation->atom.at(k));
  std::printf("  AS k=2..6:");
  for (int k=2;k<=6;++k) std::printf(" %.0f", 100*c.correlation->as_all.at(k));
  std::printf("\n  AS-multi:");
  for (int k=2;k<=6;++k) std::printf(" %.0f", 100*c.correlation->as_multi.at(k));
  std::printf("  AS-single:");
  for (int k=2;k<=6;++k) std::printf(" %.0f", 100*c.correlation->as_single.at(k));
  std::printf("\n");
  return 0;
}
