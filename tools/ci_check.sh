#!/usr/bin/env bash
# One-command CI gate: the default build with the full test suite, then
# the sanitizer presets over their labeled smoke subsets (see
# CMakePresets.json and tests/CMakeLists.txt for the label wiring).
#
#   tools/ci_check.sh             # default + serve + vp + asan + tsan
#   tools/ci_check.sh default     # any subset of: default serve vp asan tsan
#
# Run from the repository root. Each stage is incremental: configure is
# skipped when the preset's build directory already has a cache.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=(default serve vp asan tsan)
fi

configure() { # <preset> <builddir>
  if [ ! -f "$2/CMakeCache.txt" ]; then
    cmake --preset "$1"
  fi
}

for stage in "${STAGES[@]}"; do
  echo "==> ci_check: ${stage}"
  case "${stage}" in
    default)
      configure default build
      cmake --build --preset default -j "${JOBS}"
      ctest --test-dir build --output-on-failure -j "${JOBS}"
      # Propagation micro-bench smoke: one iteration of each BM_* so the
      # policy-engine benchmark harness cannot rot (numbers are not
      # asserted here; run build/bench/perf_propagate for real timings).
      ./build/bench/perf_propagate --benchmark_min_time=0.01
      ;;
    serve)
      # bga_serve protocol + live-socket smoke (tests/test_serve.cpp);
      # the same suite also runs under the tsan stage via its labels.
      configure default build
      cmake --build --preset default -j "${JOBS}" --target test_serve
      ctest --test-dir build -L serve_smoke --output-on-failure -j "${JOBS}"
      ;;
    vp)
      # VP-value selection smoke: the table_vp_value experiment at quarter
      # scale under --strict-checks (cli/CMakeLists.txt wires the test).
      configure default build
      cmake --build --preset default -j "${JOBS}" --target bga_bench
      ctest --test-dir build -L vp_smoke --output-on-failure -j "${JOBS}"
      ;;
    asan)
      configure asan build-asan
      cmake --build --preset asan -j "${JOBS}"
      ctest --test-dir build-asan -L asan_smoke --output-on-failure -j "${JOBS}"
      ;;
    tsan)
      configure tsan build-tsan
      cmake --build --preset tsan -j "${JOBS}"
      ctest --test-dir build-tsan -L tsan --output-on-failure -j "${JOBS}"
      ;;
    *)
      echo "ci_check: unknown stage '${stage}' (expected: default serve vp asan tsan)" >&2
      exit 2
      ;;
  esac
done
echo "==> ci_check: all stages passed (${STAGES[*]})"
